// The shared striped (Farrar) local-alignment sweep, templated over a lane
// engine, plus the per-block precision ladder that instantiates it at 8 and
// 16 bits.  Included only by the per-backend kernel translation units (each
// compiled with its own ISA flags); everything here is inline/templated.
//
// Engine contract (all lanes unsigned, saturating):
//   V        vector register type
//   Word     lane type (uint8_t or uint16_t)
//   kLanes   lanes per vector
//   zero(), set1(int), loadu(const void*), storeu(void*, V)
//   adds/subs  saturating add/subtract (subs clamps at 0 — this IS the
//              local-alignment clamp in the biased domain)
//   maxv       lane-wise maximum
//   shift1     lanes up by one (lane l <- lane l-1, lane 0 <- 0)
//   any_gt     true when any lane of a exceeds the same lane of b
//   any_ne     true when any lane pair differs
//   hmax       horizontal maximum as an int
//
// Correctness notes (docs/KERNELS.md has the full derivation):
//  * The profile is biased by max(0, -match, -mismatch), so
//    subs(adds(H, prof), bias) computes max(0, H + score) exactly while all
//    lanes stay unsigned.  E and F live unbiased and >= 0; a clamped-to-zero
//    gap state can never beat H (H >= 0 always), so the clamp is exact.
//  * First-saturation argument: the first cell (in dependency order) whose
//    true value exceeds cap = word_max - bias has all-exact inputs, so its
//    add saturates and it computes exactly cap.  Hence the sweep's running
//    maximum reaches cap if and only if some true value reached cap, which
//    makes `computed_max >= cap` a sound and complete overflow test.
//  * The lazy-F loop also refreshes E (E = max(E, H' - gap_oe)) whenever it
//    raises an H, so the stored E row is the exact Gotoh E even when a
//    vertical gap crosses a lane boundary — without this, an F-derived H
//    followed by an immediately adjacent horizontal gap could score low.
//  * Best-cell tracking reproduces the (b, a)-lexicographic tie-break: a
//    lane-wise running maximum detects columns that improve any lane (a
//    strict global improvement always improves its own lane's maximum), and
//    only those columns are rescanned scalar-wise in ascending query order
//    with strict-improvement updates.  Padding lanes are skipped by index.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <vector>

#include "simd/striped.h"
#include "util/alphabet.h"

namespace gdsm::simd::detail {

struct StripedScratch {
  std::vector<std::uint8_t> h_store, h_load, e;
};

inline StripedScratch& striped_scratch() {
  thread_local StripedScratch scratch;
  return scratch;
}

/// The striped path serves exactly the fresh score-only block shape: no
/// boundary feeds, no edge outputs, zero corner.  Anything else keeps the
/// anti-diagonal backend's blocked-boundary semantics.
inline bool striped_fresh(const DiagBlock& blk) {
  return blk.a_len > 0 && blk.b_len > 0 && blk.bound_a == nullptr &&
         blk.bound_b == nullptr && blk.corner == 0 &&
         blk.out_last_b == nullptr && blk.out_last_a == nullptr &&
         blk.bound_e == nullptr && blk.bound_f == nullptr &&
         blk.out_last_b_e == nullptr && blk.out_last_a_f == nullptr;
}

/// The profile is indexed by character value; out-of-alphabet bytes (which
/// the comparison-based anti-diagonal kernels tolerate) must delegate.
inline bool striped_chars_ok(const Base* seq, std::size_t len) {
  for (std::size_t i = 0; i < len; ++i) {
    if (seq[i] >= kAlphabetSize) return false;
  }
  return true;
}

/// Largest per-step score gain: no path can climb faster than this per
/// consumed diagonal, and gaps never climb (the fit gates require <= 0).
inline std::int64_t striped_step_gain(const ScoreParams& sp) {
  return std::max({sp.match, sp.mismatch, 0});
}

/// Saturation-free guarantee for the 16-bit rung: every add stays below
/// 65535 when the best reachable true value plus one biased profile entry
/// does.  (The 8-bit rung needs no such gate — it detects saturation.)
inline bool striped_bound16_ok(const ScoreParams& sp, std::size_t m,
                               std::size_t n, int bias) {
  const std::int64_t reach =
      striped_step_gain(sp) * static_cast<std::int64_t>(std::min(m, n));
  return reach + striped_step_gain(sp) + bias <= 65000;
}

struct StripedSweepOut {
  BestCell best;
  int computed_max = 0;  ///< unbiased running maximum over every lane
};

template <class E>
inline StripedSweepOut striped_local_sweep(const Base* b_seq, std::size_t n,
                                           std::size_t m,
                                           const typename E::Word* prof_base,
                                           std::size_t seg_len, int bias,
                                           int gap_oe, int gap_e) {
  using V = typename E::V;
  using Word = typename E::Word;
  constexpr int kL = E::kLanes;
  constexpr std::size_t kVecBytes = sizeof(Word) * static_cast<std::size_t>(kL);
  const std::size_t row_bytes = seg_len * kVecBytes;

  StripedScratch& scr = striped_scratch();
  scr.h_store.assign(row_bytes, 0);
  scr.h_load.assign(row_bytes, 0);
  scr.e.assign(row_bytes, 0);
  std::uint8_t* hs = scr.h_store.data();
  std::uint8_t* hl = scr.h_load.data();
  std::uint8_t* eb = scr.e.data();

  const V vBias = E::set1(bias);
  const V vGapOE = E::set1(gap_oe);
  const V vGapE = E::set1(gap_e);
  V vMaxAll = E::zero();
  StripedSweepOut out;

  for (std::size_t j = 0; j < n; ++j) {
    const typename E::Word* prof =
        prof_base + static_cast<std::size_t>(b_seq[j]) * seg_len *
                        static_cast<std::size_t>(kL);
    std::swap(hs, hl);
    // H entering segment 0 is the previous column's last segment, lanes up
    // one (query position l*seg_len - 1); lane 0 gets the H(-1, j-1) = 0
    // boundary from the shift.
    V vH = E::shift1(E::loadu(hl + (seg_len - 1) * kVecBytes));
    V vF = E::zero();
    // The running lane maximum folds in every stored H, here and in the
    // lazy-F corrections below: corrections only ever raise a cell, so the
    // fold over all stores equals the fold over the final column — no
    // separate read-back pass needed.
    const V vPrev = vMaxAll;
    for (std::size_t s = 0; s < seg_len; ++s) {
      vH = E::subs(E::adds(vH, E::loadu(prof + s * kL)), vBias);
      V vE = E::loadu(eb + s * kVecBytes);
      vH = E::maxv(vH, vE);
      vH = E::maxv(vH, vF);
      E::storeu(hs + s * kVecBytes, vH);
      vMaxAll = E::maxv(vMaxAll, vH);
      const V vHo = E::subs(vH, vGapOE);
      vE = E::maxv(E::subs(vE, vGapE), vHo);
      E::storeu(eb + s * kVecBytes, vE);
      vF = E::maxv(E::subs(vF, vGapE), vHo);
      vH = E::loadu(hl + s * kVecBytes);
    }
    // Lazy F: carry the column's vertical-gap state across lane boundaries.
    // Each pass shifts vF up a lane; the loop exits as soon as no lane can
    // improve (vF <= max(H - gap_oe, 0), the unsigned subs supplying the
    // clamp), and is hard-bounded by kLanes passes — after that every
    // original lane value has been shifted out and replaced by the zero
    // boundary.
    vF = E::shift1(vF);
    std::size_t s = 0;
    int passes = 0;
    vH = E::loadu(hs);
    while (E::any_gt(vF, E::subs(vH, vGapOE))) {
      vH = E::maxv(vH, vF);
      E::storeu(hs + s * kVecBytes, vH);
      vMaxAll = E::maxv(vMaxAll, vH);
      const V vHo = E::subs(vH, vGapOE);
      E::storeu(eb + s * kVecBytes,
                E::maxv(E::loadu(eb + s * kVecBytes), vHo));
      vF = E::subs(vF, vGapE);
      if (++s == seg_len) {
        s = 0;
        vF = E::shift1(vF);
        if (++passes == kL) break;
      }
      vH = E::loadu(hs + s * kVecBytes);
    }
    // Tie-break-exact best tracking.  A cell can become the new best only
    // when the horizontal maximum itself grows, so the column is rescanned
    // only then, and only for cells *equal* to the new maximum: lane-major
    // order (i = lane * seg_len + s) walks query positions ascending, so
    // the first such cell is the (b, a)-lexicographic winner.  Padded
    // positions (i >= m) are never accepted; they can at most tie a real
    // cell from an earlier column, which already holds the tie-break.
    if (E::any_ne(vMaxAll, vPrev)) {
      const int g = E::hmax(vMaxAll);
      if (g > out.best.score) {
        for (std::size_t lane = 0; lane < static_cast<std::size_t>(kL);
             ++lane) {
          const std::size_t base = lane * seg_len;
          if (base >= m) break;
          const std::size_t lim = std::min(seg_len, m - base);
          std::size_t t = 0;
          for (; t < lim; ++t) {
            Word w;
            std::memcpy(&w, hs + t * kVecBytes + lane * sizeof(Word),
                        sizeof(Word));
            if (static_cast<std::int32_t>(w) == g) {
              out.best.score = g;
              out.best.a = base + t;
              out.best.b = j;
              break;
            }
          }
          if (t < lim) break;
        }
      }
    }
  }
  out.computed_max = E::hmax(vMaxAll);
  return out;
}

/// The adaptive ladder for one fresh block: 8-bit sweep with overflow
/// detection, 16-bit re-run under the proven bound, anti-diagonal delegation
/// beyond that (whose own 16/32-bit routing takes over).  `wide` is the
/// paired anti-diagonal backend's block_best.
template <class E8, class E16>
inline BestCell striped_block_best_impl(
    const DiagBlock& blk, const ScoreParams& sp,
    BestCell (*wide)(const DiagBlock&, const ScoreParams&)) {
  if (!striped_fresh(blk) || !striped_chars_ok(blk.b_seq, blk.b_len)) {
    note_delegated();
    return wide(blk, sp);
  }
  const std::size_t m = blk.a_len;
  const std::size_t n = blk.b_len;
  const std::shared_ptr<const QueryProfile> prof =
      striped_profile(blk.a_seq, m, sp, E8::kLanes, E16::kLanes);
  if (prof == nullptr || (!prof->fit8 && !prof->fit16)) {
    note_delegated();
    return wide(blk, sp);
  }
  const int bias = prof->bias;
  const int gap_e = -sp.gap;
  const int gap_oe = -(sp.gap_open + sp.gap);
  if (prof->fit8) {
    const StripedSweepOut r = striped_local_sweep<E8>(
        blk.b_seq, n, m, prof->prof8.data(), prof->seg8, bias, gap_oe, gap_e);
    note_sweep8(static_cast<std::uint64_t>(m) * n);
    if (r.computed_max < 255 - bias) return r.best;
    note_overflow_rerun();
  }
  if (prof->fit16 && striped_bound16_ok(sp, m, n, bias)) {
    const StripedSweepOut r =
        striped_local_sweep<E16>(blk.b_seq, n, m, prof->prof16.data(),
                                 prof->seg16, bias, gap_oe, gap_e);
    note_sweep16(static_cast<std::uint64_t>(m) * n);
    return r.best;
  }
  note_fallback32();
  return wide(blk, sp);
}

// ---------------------------------------------------------------------------
// Portable striped engines: the striped-scalar reference backend, plain C++
// over fixed-size lane arrays (the SSE4.1 lane geometry, so scalar and
// sse41 share cached profiles).  Compilers auto-vectorize these on any ISA.

template <class WordT, int N>
struct StripedScalarEngine {
  struct V {
    WordT l[N];
  };
  using Word = WordT;
  static constexpr int kLanes = N;
  static constexpr int kWordMax = (1 << (8 * sizeof(WordT))) - 1;

  static V zero() { return V{}; }
  static V set1(int x) {
    V v;
    for (int i = 0; i < N; ++i) v.l[i] = static_cast<WordT>(x);
    return v;
  }
  static V loadu(const void* p) {
    V v;
    std::memcpy(&v, p, sizeof v);
    return v;
  }
  static void storeu(void* p, V v) { std::memcpy(p, &v, sizeof v); }
  static V adds(V a, V b) {
    V r;
    for (int i = 0; i < N; ++i) {
      const int t = static_cast<int>(a.l[i]) + static_cast<int>(b.l[i]);
      r.l[i] = static_cast<WordT>(t > kWordMax ? kWordMax : t);
    }
    return r;
  }
  static V subs(V a, V b) {
    V r;
    for (int i = 0; i < N; ++i) {
      const int t = static_cast<int>(a.l[i]) - static_cast<int>(b.l[i]);
      r.l[i] = static_cast<WordT>(t < 0 ? 0 : t);
    }
    return r;
  }
  static V maxv(V a, V b) {
    V r;
    for (int i = 0; i < N; ++i) r.l[i] = std::max(a.l[i], b.l[i]);
    return r;
  }
  static V shift1(V v) {
    V r;
    r.l[0] = 0;
    for (int i = 1; i < N; ++i) r.l[i] = v.l[i - 1];
    return r;
  }
  static bool any_gt(V a, V b) {
    for (int i = 0; i < N; ++i) {
      if (a.l[i] > b.l[i]) return true;
    }
    return false;
  }
  static bool any_ne(V a, V b) {
    for (int i = 0; i < N; ++i) {
      if (a.l[i] != b.l[i]) return true;
    }
    return false;
  }
  static int hmax(V v) {
    int best = 0;
    for (int i = 0; i < N; ++i) best = std::max(best, static_cast<int>(v.l[i]));
    return best;
  }
};

using StripedScalar8 = StripedScalarEngine<std::uint8_t, 16>;
using StripedScalar16 = StripedScalarEngine<std::uint16_t, 8>;

}  // namespace gdsm::simd::detail
