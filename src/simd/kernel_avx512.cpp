// Striped AVX-512BW backend: the Farrar sweep over 512-bit unsigned
// saturating engines (64 lanes at 8 bits, 32 at 16).  Compiled with
// -mavx512f -mavx512bw only when the toolchain accepts those flags (see
// CMakeLists.txt; GDSM_SIMD_AVX512 gates every reference); runtime
// availability is still CPU-gated in dispatch.cpp.  Ineligible blocks — and
// the 32-bit rung of the precision ladder — delegate to the anti-diagonal
// AVX2 backend, the widest kernel with full DiagBlock semantics.
#if defined(__x86_64__) || defined(__i386__)

#include "simd/engine_avx512.h"
#include "simd/striped_kernel_inl.h"

namespace gdsm::simd::striped_avx512 {

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  return detail::striped_block_best_impl<detail::StripedAvx512_8,
                                         detail::StripedAvx512_16>(
      blk, sp, &avx2::block_best);
}

}  // namespace gdsm::simd::striped_avx512

#endif  // x86
