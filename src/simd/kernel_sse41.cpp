// SSE4.1 backend: instantiates the shared anti-diagonal sweep over the
// 128-bit engines.  This file is compiled with -msse4.1 (see CMakeLists.txt);
// nothing outside src/simd may include its headers.
#if defined(__x86_64__) || defined(__i386__)

#include "simd/engine_sse41.h"
#include "simd/diag_kernel_inl.h"

namespace gdsm::simd::sse41 {

using detail::EngineSse16;
using detail::EngineSse32;
using detail::Mode;

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  BestCell best;
  detail::run_local<EngineSse16, EngineSse32, Mode::kBest>(
      blk, sp, 0, &best, nullptr, nullptr);
  return best;
}

void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a) {
  detail::run_local<EngineSse16, EngineSse32, Mode::kCount>(
      blk, sp, threshold, nullptr, count_by_a, nullptr);
}

void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink) {
  detail::run_local<EngineSse16, EngineSse32, Mode::kHits>(
      blk, sp, threshold, nullptr, nullptr, &sink);
}

void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a) {
  detail::run_nw<EngineSse32>(a_seq, a_len, b_seq, b_len, sp, out_by_a);
}

void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e) {
  detail::run_nw_affine<EngineSse32>(a_seq, a_len, b_seq, b_len, sp, tb_open,
                                     out_h, out_e);
}

}  // namespace gdsm::simd::sse41

// Striped-SSE4.1: the Farrar sweep over the 128-bit unsigned saturating
// engines; anything the striped path cannot serve delegates to the
// anti-diagonal SSE4.1 backend above.
#include "simd/striped_kernel_inl.h"

namespace gdsm::simd::striped_sse41 {

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp) {
  return detail::striped_block_best_impl<detail::StripedSse8,
                                         detail::StripedSse16>(
      blk, sp, &sse41::block_best);
}

}  // namespace gdsm::simd::striped_sse41

#endif  // x86
