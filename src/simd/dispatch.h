// Runtime kernel dispatch: pick the widest backend the CPU supports, let
// GDSM_KERNEL= (or a force_backend call) override it, and meter every call.
//
// All DP call sites in the tree (sw/linear_score, sw/hirschberg,
// core/preprocess, core/exact_parallel, core/reprocess) go through the four
// free functions below; they never name a backend.  Selection happens once,
// on first use:
//
//   1. compiled-in candidates: scalar always; sse41/avx2 on x86 builds
//   2. CPUID (__builtin_cpu_supports) drops what the host can't run
//   3. the widest survivor wins — unless GDSM_KERNEL=scalar|sse41|avx2
//      forces one (an unavailable or unknown name warns once on stderr and
//      falls back to the auto pick, it never aborts a run)
//
// tests and benches re-pin the choice with force_backend(); docs/KERNELS.md
// has the full backend matrix and the 16/32-bit width-routing rules.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "simd/kernels.h"

namespace gdsm::simd {

enum class Backend : int { kScalar = 0, kSse41 = 1, kAvx2 = 2 };

/// Stable lower-case name ("scalar", "sse41", "avx2") — the GDSM_KERNEL
/// vocabulary, also what reports and NodeStats carry.
const char* backend_name(Backend b);

/// Backends compiled into this binary *and* runnable on this CPU, widest
/// last.  Always contains kScalar.
std::vector<Backend> available_backends();

/// The backend the free functions currently dispatch to.
Backend active_backend();
const char* active_backend_name();

/// Pins dispatch to `b` if available; returns the backend actually active
/// afterwards (the auto pick when `b` is unavailable).
Backend force_backend(Backend b);

/// Same, by GDSM_KERNEL vocabulary name; unknown names keep the current
/// choice.  Returns the backend active afterwards.
Backend force_backend(std::string_view name);

// ---------------------------------------------------------------------------
// The dispatched kernels.  Contracts are kernels.h's, backend-independent.

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a);
void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink);
void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a);
void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e);

// ---------------------------------------------------------------------------
// Per-kernel metering, aggregated across threads since process start (or the
// last reset).  `seconds` is host wall-clock inside the kernel calls, so
// derived throughput is a host_clock quantity; calls/cells are deterministic
// for a deterministic workload.

struct KernelCounters {
  std::uint64_t calls = 0;
  std::uint64_t cells = 0;   ///< DP cell updates (a_len * b_len summed)
  double seconds = 0.0;
};

struct KernelStats {
  const char* backend = "";  ///< active_backend_name() at snapshot time
  KernelCounters best;       ///< block_best
  KernelCounters count;      ///< block_count
  KernelCounters hits;       ///< block_hits
  KernelCounters nw;         ///< nw_last_row
  KernelCounters nw_affine;  ///< nw_last_row_affine
};

KernelStats kernel_stats();
void reset_kernel_stats();

}  // namespace gdsm::simd
