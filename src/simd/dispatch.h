// Runtime kernel dispatch: pick the widest backend the CPU supports, let
// GDSM_KERNEL= (or a force_backend call) override it, and meter every call.
//
// All DP call sites in the tree (sw/linear_score, sw/hirschberg,
// core/preprocess, core/exact_parallel, core/reprocess) go through the four
// free functions below; they never name a backend.  Selection happens once,
// on first use:
//
//   1. compiled-in candidates: scalar + striped-scalar always; sse41/avx2
//      and their striped twins on x86 builds; striped-avx512 when the
//      toolchain accepted the AVX-512BW flags
//   2. CPUID (__builtin_cpu_supports) drops what the host can't run
//   3. the preferred survivor wins (striped-avx2 when available; see
//      available_backends on why AVX-512 isn't auto-picked) — unless
//      GDSM_KERNEL=
//      scalar|sse41|avx2|striped-scalar|striped-sse41|striped-avx2|
//      striped-avx512 forces one (an unavailable or unknown name warns once
//      on stderr and falls back to the auto pick, it never aborts a run)
//
// The striped backends (striped.h) replace only block_best — the one
// score-only kernel — with the Farrar query-profile sweep; the other four
// kernels of a striped entry delegate to the paired anti-diagonal backend,
// so forcing a striped backend is always total.
//
// tests and benches re-pin the choice with force_backend(); docs/KERNELS.md
// has the full backend matrix and the 16/32-bit width-routing rules.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "simd/kernels.h"
#include "simd/striped.h"

namespace gdsm::simd {

enum class Backend : int {
  kScalar = 0,
  kSse41 = 1,
  kAvx2 = 2,
  kStripedScalar = 3,
  kStripedSse41 = 4,
  kStripedAvx2 = 5,
  kStripedAvx512 = 6,
};

/// Stable lower-case name ("scalar", "sse41", "avx2", "striped-scalar",
/// "striped-sse41", "striped-avx2", "striped-avx512") — the GDSM_KERNEL
/// vocabulary, also what reports and NodeStats carry.
const char* backend_name(Backend b);

/// Backends compiled into this binary *and* runnable on this CPU, preferred
/// (auto-pick) last.  Always contains kScalar.  striped-avx512 deliberately
/// ranks below striped-avx2 (512-bit frequency licensing on the target
/// parts; see dispatch.cpp); force it explicitly on full-rate hosts.
std::vector<Backend> available_backends();

/// The backend the free functions currently dispatch to.
Backend active_backend();
const char* active_backend_name();

/// Pins dispatch to `b` if available; returns the backend actually active
/// afterwards (the auto pick when `b` is unavailable).
Backend force_backend(Backend b);

/// Same, by GDSM_KERNEL vocabulary name; unknown names keep the current
/// choice.  Returns the backend active afterwards.
Backend force_backend(std::string_view name);

// ---------------------------------------------------------------------------
// The dispatched kernels.  Contracts are kernels.h's, backend-independent.

BestCell block_best(const DiagBlock& blk, const ScoreParams& sp);
void block_count(const DiagBlock& blk, const ScoreParams& sp,
                 std::int32_t threshold, std::uint64_t* count_by_a);
void block_hits(const DiagBlock& blk, const ScoreParams& sp,
                std::int32_t threshold, const HitSink& sink);
void nw_last_row(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                 std::size_t b_len, const ScoreParams& sp,
                 std::int32_t* out_by_a);
void nw_last_row_affine(const Base* a_seq, std::size_t a_len, const Base* b_seq,
                        std::size_t b_len, const ScoreParams& sp,
                        std::int32_t tb_open, std::int32_t* out_h,
                        std::int32_t* out_e);

// ---------------------------------------------------------------------------
// Per-kernel metering, aggregated across threads since process start (or the
// last reset).  `seconds` is host wall-clock inside the kernel calls, so
// derived throughput is a host_clock quantity; calls/cells are deterministic
// for a deterministic workload.

struct KernelCounters {
  std::uint64_t calls = 0;
  std::uint64_t cells = 0;   ///< DP cell updates (a_len * b_len summed)
  double seconds = 0.0;
};

struct KernelStats {
  const char* backend = "";  ///< active_backend_name() at snapshot time
  KernelCounters best;       ///< block_best
  KernelCounters count;      ///< block_count
  KernelCounters hits;       ///< block_hits
  KernelCounters nw;         ///< nw_last_row
  KernelCounters nw_affine;  ///< nw_last_row_affine
  StripedCounters striped;   ///< striped-path activity (striped.h)
};

KernelStats kernel_stats();
void reset_kernel_stats();

}  // namespace gdsm::simd
