// AVX-512BW lane engines for the striped sweep (striped_kernel_inl.h).
// Include only from a translation unit compiled with -mavx512f -mavx512bw.
//
// shift1 (whole-vector byte shift across 128-bit lanes, zero shifted in) is
// built from maskz_shuffle_i64x2 — which produces the vector rotated down
// one 128-bit lane with the incoming lane zeroed — stitched per-lane by
// alignr_epi8.  The horizontal predicates come straight from the AVX-512
// compare-into-mask instructions.
#pragma once

#include <immintrin.h>

#include <algorithm>
#include <cstdint>

#include "util/alphabet.h"

namespace gdsm::simd::detail {

struct StripedAvx512_8 {
  using V = __m512i;
  using Word = std::uint8_t;
  static constexpr int kLanes = 64;

  static V zero() { return _mm512_setzero_si512(); }
  static V set1(int x) { return _mm512_set1_epi8(static_cast<char>(x)); }
  static V loadu(const void* p) { return _mm512_loadu_si512(p); }
  static void storeu(void* p, V v) { _mm512_storeu_si512(p, v); }
  static V adds(V a, V b) { return _mm512_adds_epu8(a, b); }
  static V subs(V a, V b) { return _mm512_subs_epu8(a, b); }
  static V maxv(V a, V b) { return _mm512_max_epu8(a, b); }
  static V shift1(V v) {
    // prev = [0, v_lane0, v_lane1, v_lane2] in 128-bit lanes.
    const V prev = _mm512_maskz_shuffle_i64x2(0xFC, v, v, 0x90);
    return _mm512_alignr_epi8(v, prev, 15);
  }
  static bool any_gt(V a, V b) {
    return _mm512_cmpgt_epu8_mask(a, b) != 0;
  }
  static bool any_ne(V a, V b) {
    return _mm512_cmpneq_epu8_mask(a, b) != 0;
  }
  static int hmax(V v) {
    alignas(64) Word l[kLanes];
    _mm512_store_si512(l, v);
    int best = 0;
    for (int i = 0; i < kLanes; ++i) best = std::max(best, static_cast<int>(l[i]));
    return best;
  }
};

struct StripedAvx512_16 {
  using V = __m512i;
  using Word = std::uint16_t;
  static constexpr int kLanes = 32;

  static V zero() { return _mm512_setzero_si512(); }
  static V set1(int x) { return _mm512_set1_epi16(static_cast<short>(x)); }
  static V loadu(const void* p) { return _mm512_loadu_si512(p); }
  static void storeu(void* p, V v) { _mm512_storeu_si512(p, v); }
  static V adds(V a, V b) { return _mm512_adds_epu16(a, b); }
  static V subs(V a, V b) { return _mm512_subs_epu16(a, b); }
  static V maxv(V a, V b) { return _mm512_max_epu16(a, b); }
  static V shift1(V v) {
    const V prev = _mm512_maskz_shuffle_i64x2(0xFC, v, v, 0x90);
    return _mm512_alignr_epi8(v, prev, 14);
  }
  static bool any_gt(V a, V b) {
    return _mm512_cmpgt_epu16_mask(a, b) != 0;
  }
  static bool any_ne(V a, V b) {
    return _mm512_cmpneq_epu16_mask(a, b) != 0;
  }
  static int hmax(V v) {
    alignas(64) Word l[kLanes];
    _mm512_store_si512(l, v);
    int best = 0;
    for (int i = 0; i < kLanes; ++i) best = std::max(best, static_cast<int>(l[i]));
    return best;
  }
};

}  // namespace gdsm::simd::detail
