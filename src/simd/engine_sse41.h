// SSE4.1 lane engines for the anti-diagonal sweep (diag_kernel_inl.h).
// Include only from a translation unit compiled with -msse4.1.
#pragma once

#include <smmintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "util/alphabet.h"

namespace gdsm::simd::detail {

struct EngineSse16 {
  using V = __m128i;
  using Lane = std::int16_t;
  static constexpr int kLanes = 8;
  static constexpr int kSegSteps = 30000;   // keeps step stamps/counters exact
  static constexpr int kMaskBitsPerLane = 2;
  static V zero() { return _mm_setzero_si128(); }
  static V bcast(int x) { return _mm_set1_epi16(static_cast<short>(x)); }
  static V loadu(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm_storeu_si128(static_cast<__m128i*>(p), v);
  }
  static V load_chars(const Base* p) {
    return _mm_cvtepu8_epi16(
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p)));
  }
  static V load_bound(const std::int32_t* p) {
    // Values are within the 16-bit routing limits, so the pack cannot clip.
    return _mm_packs_epi32(loadu(p), loadu(p + 4));
  }
  static V add(V a, V b) { return _mm_adds_epi16(a, b); }  // saturating
  static V sub(V a, V b) { return _mm_sub_epi16(a, b); }
  static V max(V a, V b) { return _mm_max_epi16(a, b); }
  static V cmpeq(V a, V b) { return _mm_cmpeq_epi16(a, b); }
  static V cmpgt(V a, V b) { return _mm_cmpgt_epi16(a, b); }
  static V blend(V a, V b, V m) { return _mm_blendv_epi8(a, b, m); }
  static V and_(V a, V b) { return _mm_and_si128(a, b); }
  static V andnot(V m, V a) { return _mm_andnot_si128(m, a); }
  static V shift_in(V v, std::int32_t x) {  // lane 0 <- x, lane l <- v[l-1]
    // The byte shift zeroes lane 0; OR the incoming value in from a zeroing
    // movd, keeping the serial-dependency-chain op count minimal.
    return _mm_or_si128(_mm_slli_si128(v, 2), _mm_cvtsi32_si128(x & 0xFFFF));
  }
  static int movemask(V m) { return _mm_movemask_epi8(m); }
};

struct EngineSse32 {
  using V = __m128i;
  using Lane = std::int32_t;
  static constexpr int kLanes = 4;
  static constexpr int kSegSteps = 1 << 28;
  static constexpr int kMaskBitsPerLane = 4;
  static V zero() { return _mm_setzero_si128(); }
  static V bcast(int x) { return _mm_set1_epi32(x); }
  static V loadu(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm_storeu_si128(static_cast<__m128i*>(p), v);
  }
  static V load_chars(const Base* p) {
    std::uint32_t word;
    std::memcpy(&word, p, sizeof word);
    return _mm_cvtepu8_epi32(_mm_cvtsi32_si128(static_cast<int>(word)));
  }
  static V load_bound(const std::int32_t* p) { return loadu(p); }
  static V add(V a, V b) { return _mm_add_epi32(a, b); }
  static V sub(V a, V b) { return _mm_sub_epi32(a, b); }
  static V max(V a, V b) { return _mm_max_epi32(a, b); }
  static V cmpeq(V a, V b) { return _mm_cmpeq_epi32(a, b); }
  static V cmpgt(V a, V b) { return _mm_cmpgt_epi32(a, b); }
  static V blend(V a, V b, V m) { return _mm_blendv_epi8(a, b, m); }
  static V and_(V a, V b) { return _mm_and_si128(a, b); }
  static V andnot(V m, V a) { return _mm_andnot_si128(m, a); }
  static V shift_in(V v, std::int32_t x) {
    return _mm_or_si128(_mm_slli_si128(v, 4), _mm_cvtsi32_si128(x));
  }
  static int movemask(V m) { return _mm_movemask_epi8(m); }
};

/// Striped engines (striped_kernel_inl.h contract): unsigned saturating
/// lanes, lane-shift, and the two horizontal predicates the lazy-F loop and
/// the best-cell tracker need.
struct StripedSse8 {
  using V = __m128i;
  using Word = std::uint8_t;
  static constexpr int kLanes = 16;

  static V zero() { return _mm_setzero_si128(); }
  static V set1(int x) { return _mm_set1_epi8(static_cast<char>(x)); }
  static V loadu(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm_storeu_si128(static_cast<__m128i*>(p), v);
  }
  static V adds(V a, V b) { return _mm_adds_epu8(a, b); }
  static V subs(V a, V b) { return _mm_subs_epu8(a, b); }
  static V maxv(V a, V b) { return _mm_max_epu8(a, b); }
  static V shift1(V v) { return _mm_slli_si128(v, 1); }
  static bool any_gt(V a, V b) {
    // a > b (unsigned) in some lane <=> saturating a - b is nonzero there.
    return !_mm_testz_si128(_mm_subs_epu8(a, b), _mm_subs_epu8(a, b));
  }
  static bool any_ne(V a, V b) {
    return _mm_movemask_epi8(_mm_cmpeq_epi8(a, b)) != 0xFFFF;
  }
  static int hmax(V v) {
    alignas(16) Word l[kLanes];
    _mm_store_si128(reinterpret_cast<__m128i*>(l), v);
    int best = 0;
    for (int i = 0; i < kLanes; ++i) best = std::max(best, static_cast<int>(l[i]));
    return best;
  }
};

struct StripedSse16 {
  using V = __m128i;
  using Word = std::uint16_t;
  static constexpr int kLanes = 8;

  static V zero() { return _mm_setzero_si128(); }
  static V set1(int x) { return _mm_set1_epi16(static_cast<short>(x)); }
  static V loadu(const void* p) {
    return _mm_loadu_si128(static_cast<const __m128i*>(p));
  }
  static void storeu(void* p, V v) {
    _mm_storeu_si128(static_cast<__m128i*>(p), v);
  }
  static V adds(V a, V b) { return _mm_adds_epu16(a, b); }
  static V subs(V a, V b) { return _mm_subs_epu16(a, b); }
  static V maxv(V a, V b) { return _mm_max_epu16(a, b); }
  static V shift1(V v) { return _mm_slli_si128(v, 2); }
  static bool any_gt(V a, V b) {
    return !_mm_testz_si128(_mm_subs_epu16(a, b), _mm_subs_epu16(a, b));
  }
  static bool any_ne(V a, V b) {
    return _mm_movemask_epi8(_mm_cmpeq_epi16(a, b)) != 0xFFFF;
  }
  static int hmax(V v) {
    alignas(16) Word l[kLanes];
    _mm_store_si128(reinterpret_cast<__m128i*>(l), v);
    int best = 0;
    for (int i = 0; i < kLanes; ++i) best = std::max(best, static_cast<int>(l[i]));
    return best;
  }
};

}  // namespace gdsm::simd::detail
