// Striped-kernel shared state: activity counters, query-profile builds, and
// the process-wide profile LRU cache (docs/KERNELS.md "Striped query-profile
// kernels").
#include "simd/striped.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <list>
#include <mutex>
#include <string>
#include <utility>

#include "simd/dispatch.h"
#include "util/alphabet.h"

namespace gdsm::simd {
namespace {

struct AtomicStripedCounters {
  std::atomic<std::uint64_t> sweeps8{0}, sweeps16{0};
  std::atomic<std::uint64_t> cells8{0}, cells16{0};
  std::atomic<std::uint64_t> overflow_reruns{0}, fallback32{0}, delegated{0};
  std::atomic<std::uint64_t> profile_builds{0}, profile_hits{0};
};

AtomicStripedCounters g_striped;

/// Biased substitution score of query char `qc` against database char `dc`
/// under the kernels.h rule: equal and not N scores match, otherwise
/// mismatch.  (kBaseN never matches, not even itself.)
inline int biased_sub(Base qc, Base dc, const ScoreParams& sp, int bias) {
  return ((qc == dc && qc != kBaseN) ? sp.match : sp.mismatch) + bias;
}

/// Cache key: exact query bytes + the four score params + lane geometry.
/// Lane geometry matters because segment length (hence layout) depends on
/// it; scalar and SSE4.1 share a geometry and therefore share entries.
struct CacheKey {
  std::string query;
  int match, mismatch, gap, gap_open;
  int lanes8, lanes16;

  bool operator==(const CacheKey& o) const {
    return match == o.match && mismatch == o.mismatch && gap == o.gap &&
           gap_open == o.gap_open && lanes8 == o.lanes8 &&
           lanes16 == o.lanes16 && query == o.query;
  }
};

constexpr std::size_t kCacheCapacity = 32;

struct ProfileCache {
  std::mutex mu;
  // Front = most recently used.  Linear scan is fine at this capacity.
  std::list<std::pair<CacheKey, std::shared_ptr<const detail::QueryProfile>>>
      entries;
};

ProfileCache& profile_cache() {
  static ProfileCache cache;
  return cache;
}

std::shared_ptr<const detail::QueryProfile> build_profile(
    const Base* q, std::size_t m, const ScoreParams& sp, int lanes8,
    int lanes16) {
  auto prof = std::make_shared<detail::QueryProfile>();
  prof->m = m;
  prof->bias = std::max({0, -sp.match, -sp.mismatch});
  const int splus = std::max({sp.match, sp.mismatch, 0});
  // Gap magnitudes must be non-negative (gap extensions that *gain* score
  // would break the saturating recurrence and the overflow proof) and
  // representable in a lane; score+bias must fit too.
  const bool gaps_ok = sp.gap <= 0 && sp.gap_open + sp.gap <= 0;
  const int gap_e_mag = -sp.gap;
  const int gap_oe_mag = -(sp.gap_open + sp.gap);
  prof->fit8 = gaps_ok && prof->bias <= 255 && splus + prof->bias <= 255 &&
               gap_e_mag <= 255 && gap_oe_mag <= 255;
  prof->fit16 = gaps_ok && prof->bias <= 65535 &&
                splus + prof->bias <= 65535 && gap_e_mag <= 65535 &&
                gap_oe_mag <= 65535;
  if (!prof->fit8 && !prof->fit16) return prof;

  auto fill = [&](auto& out, std::size_t seg, int lanes) {
    out.assign(static_cast<std::size_t>(kAlphabetSize) * seg *
                   static_cast<std::size_t>(lanes),
               0);
    for (int c = 0; c < kAlphabetSize; ++c) {
      for (std::size_t i = 0; i < m; ++i) {
        const std::size_t lane = i / seg;
        const std::size_t s = i % seg;
        // Padding positions (i >= m) keep the pre-filled 0 = biased worst.
        out[(static_cast<std::size_t>(c) * seg + s) *
                static_cast<std::size_t>(lanes) +
            lane] =
            static_cast<typename std::decay_t<decltype(out)>::value_type>(
                biased_sub(q[i], static_cast<Base>(c), sp, prof->bias));
      }
    }
  };
  if (prof->fit8) {
    prof->seg8 = (m + static_cast<std::size_t>(lanes8) - 1) /
                 static_cast<std::size_t>(lanes8);
    fill(prof->prof8, prof->seg8, lanes8);
  }
  if (prof->fit16) {
    prof->seg16 = (m + static_cast<std::size_t>(lanes16) - 1) /
                  static_cast<std::size_t>(lanes16);
    fill(prof->prof16, prof->seg16, lanes16);
  }
  return prof;
}

/// Lane geometry of the active striped backend, or {0,0} when the active
/// backend has no striped path (then warm_query_profile is a no-op).
std::pair<int, int> active_lane_geometry() {
  switch (active_backend()) {
    case Backend::kStripedScalar:
    case Backend::kStripedSse41:
      return {16, 8};
    case Backend::kStripedAvx2:
      return {32, 16};
    case Backend::kStripedAvx512:
      return {64, 32};
    default:
      return {0, 0};
  }
}

}  // namespace

StripedCounters striped_counters() {
  StripedCounters out;
  out.sweeps8 = g_striped.sweeps8.load(std::memory_order_relaxed);
  out.sweeps16 = g_striped.sweeps16.load(std::memory_order_relaxed);
  out.cells8 = g_striped.cells8.load(std::memory_order_relaxed);
  out.cells16 = g_striped.cells16.load(std::memory_order_relaxed);
  out.overflow_reruns =
      g_striped.overflow_reruns.load(std::memory_order_relaxed);
  out.fallback32 = g_striped.fallback32.load(std::memory_order_relaxed);
  out.delegated = g_striped.delegated.load(std::memory_order_relaxed);
  out.profile_builds = g_striped.profile_builds.load(std::memory_order_relaxed);
  out.profile_hits = g_striped.profile_hits.load(std::memory_order_relaxed);
  return out;
}

void reset_striped_counters() {
  g_striped.sweeps8.store(0, std::memory_order_relaxed);
  g_striped.sweeps16.store(0, std::memory_order_relaxed);
  g_striped.cells8.store(0, std::memory_order_relaxed);
  g_striped.cells16.store(0, std::memory_order_relaxed);
  g_striped.overflow_reruns.store(0, std::memory_order_relaxed);
  g_striped.fallback32.store(0, std::memory_order_relaxed);
  g_striped.delegated.store(0, std::memory_order_relaxed);
  g_striped.profile_builds.store(0, std::memory_order_relaxed);
  g_striped.profile_hits.store(0, std::memory_order_relaxed);
}

void warm_query_profile(const Base* q, std::size_t len,
                        const ScoreParams& sp) {
  const auto [lanes8, lanes16] = active_lane_geometry();
  if (lanes8 == 0 || q == nullptr || len == 0) return;
  (void)detail::striped_profile(q, len, sp, lanes8, lanes16);
}

void clear_query_profile_cache() {
  ProfileCache& cache = profile_cache();
  std::lock_guard<std::mutex> lock(cache.mu);
  cache.entries.clear();
}

namespace detail {

std::shared_ptr<const QueryProfile> striped_profile(const Base* q,
                                                    std::size_t m,
                                                    const ScoreParams& sp,
                                                    int lanes8, int lanes16) {
  if (q == nullptr || m == 0) return nullptr;
  for (std::size_t i = 0; i < m; ++i) {
    if (q[i] >= kAlphabetSize) return nullptr;
  }
  CacheKey key{std::string(reinterpret_cast<const char*>(q), m),
               sp.match,
               sp.mismatch,
               sp.gap,
               sp.gap_open,
               lanes8,
               lanes16};
  ProfileCache& cache = profile_cache();
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    for (auto it = cache.entries.begin(); it != cache.entries.end(); ++it) {
      if (it->first == key) {
        g_striped.profile_hits.fetch_add(1, std::memory_order_relaxed);
        cache.entries.splice(cache.entries.begin(), cache.entries, it);
        return cache.entries.front().second;
      }
    }
  }
  // Build outside the lock: profile construction is O(alphabet * m) and
  // concurrent same-key builds are benign (last insert wins).
  std::shared_ptr<const QueryProfile> prof =
      build_profile(q, m, sp, lanes8, lanes16);
  g_striped.profile_builds.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(cache.mu);
    cache.entries.emplace_front(std::move(key), prof);
    while (cache.entries.size() > kCacheCapacity) cache.entries.pop_back();
  }
  return prof;
}

void note_sweep8(std::uint64_t cells) {
  g_striped.sweeps8.fetch_add(1, std::memory_order_relaxed);
  g_striped.cells8.fetch_add(cells, std::memory_order_relaxed);
}

void note_sweep16(std::uint64_t cells) {
  g_striped.sweeps16.fetch_add(1, std::memory_order_relaxed);
  g_striped.cells16.fetch_add(cells, std::memory_order_relaxed);
}

void note_overflow_rerun() {
  g_striped.overflow_reruns.fetch_add(1, std::memory_order_relaxed);
}

void note_fallback32() {
  g_striped.fallback32.fetch_add(1, std::memory_order_relaxed);
}

void note_delegated() {
  g_striped.delegated.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail
}  // namespace gdsm::simd
