// Payload encodings shared by the node (producer) and service (consumer)
// sides of the protocol: write-notice lists and page diffs.
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/global_space.h"
#include "net/message.h"

namespace gdsm::dsm::wire {

/// Write notices: a flat array of page ids.
std::vector<std::byte> encode_pages(const std::vector<PageId>& pages);
std::vector<PageId> decode_pages(const std::vector<std::byte>& payload);

/// Barrier grant payload: the union of the interval's write notices plus
/// the home-migration decisions the manager took (empty unless the
/// home_migration option is ON).
struct BarrierGrant {
  std::vector<PageId> notices;
  std::vector<std::pair<PageId, int>> migrations;  ///< (page, new home)
};

std::vector<std::byte> encode_barrier_grant(const BarrierGrant& grant);
BarrierGrant decode_barrier_grant(const std::vector<std::byte>& payload);

/// Diff format: repeated records of (u32 offset, u32 length, bytes...).
/// Produced by comparing a dirty page against its twin; runs closer than
/// 8 identical bytes apart are merged to keep record overhead low, the same
/// trade-off real diff-based DSMs make.
std::vector<std::byte> make_diff(const std::vector<std::byte>& twin,
                                 const std::vector<std::byte>& data);
void apply_diff(std::byte* dst, std::size_t dst_size,
                const std::vector<std::byte>& payload);

}  // namespace gdsm::dsm::wire
