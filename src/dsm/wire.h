// Payload encodings shared by the node (producer) and service (consumer)
// sides of the protocol: write-notice lists and page diffs.
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/global_space.h"
#include "net/message.h"

namespace gdsm::dsm::wire {

/// Write notices: a flat array of page ids.
std::vector<std::byte> encode_pages(const std::vector<PageId>& pages);
std::vector<PageId> decode_pages(const std::vector<std::byte>& payload);

/// Barrier grant payload: the union of the interval's write notices plus
/// the home-migration decisions the manager took (empty unless the
/// home_migration option is ON).
struct BarrierGrant {
  std::vector<PageId> notices;
  std::vector<std::pair<PageId, int>> migrations;  ///< (page, new home)
};

std::vector<std::byte> encode_barrier_grant(const BarrierGrant& grant);
BarrierGrant decode_barrier_grant(const std::vector<std::byte>& payload);

/// Diff format: repeated records of (u32 offset, u32 length, bytes...).
/// Produced by comparing a dirty page against its twin; runs closer than
/// 8 identical bytes apart are merged to keep record overhead low, the same
/// trade-off real diff-based DSMs make.
std::vector<std::byte> make_diff(const std::vector<std::byte>& twin,
                                 const std::vector<std::byte>& data);
void apply_diff(std::byte* dst, std::size_t dst_size,
                const std::vector<std::byte>& payload);

/// Appends the diff records of (twin, data) to `out` without clearing it;
/// returns the number of bytes appended (0 = the page did not change).
/// This is the allocation-free workhorse behind make_diff: the release path
/// encodes straight into a reused scratch buffer or a batch payload.
std::size_t append_diff(std::vector<std::byte>& out,
                        const std::vector<std::byte>& twin,
                        const std::vector<std::byte>& data);

/// Pointer flavour for the process backend, whose page contents live in a
/// mapped region rather than a vector.  `n` bytes of each side are compared.
std::size_t append_diff(std::vector<std::byte>& out, const std::byte* twin,
                        const std::byte* data, std::size_t n);

/// Record-level apply for batched payloads: `records`/`len` delimit one
/// page's diff records inside a larger buffer.
void apply_diff(std::byte* dst, std::size_t dst_size, const std::byte* records,
                std::size_t len);

/// Diff batch payload (kDiffBatch): repeated framed records of
/// (u64 page, u32 record_bytes, diff records...).  Appends one page's frame
/// to `out`; returns false (and appends nothing) when the page's diff is
/// empty — the caller counts it as a suppressed no-op diff.
bool append_diff_batch_page(std::vector<std::byte>& out, PageId page,
                            const std::vector<std::byte>& twin,
                            const std::vector<std::byte>& data);
bool append_diff_batch_page(std::vector<std::byte>& out, PageId page,
                            const std::byte* twin, const std::byte* data,
                            std::size_t n);

/// One page's slice of a diff-batch payload: `offset`/`len` delimit the
/// page's diff records inside the payload buffer.
struct DiffBatchSpan {
  PageId page = 0;
  std::size_t offset = 0;
  std::size_t len = 0;
};

std::vector<DiffBatchSpan> decode_diff_batch(
    const std::vector<std::byte>& payload);

/// Bulk page-data payload (kPagesData): repeated (u64 page, page_bytes of
/// contents) frames; `page_bytes` is fixed cluster-wide so no length field
/// is carried.
void append_page_data(std::vector<std::byte>& out, PageId page,
                      const std::byte* data, std::size_t page_bytes);

struct PageDataSpan {
  PageId page = 0;
  std::size_t offset = 0;  ///< start of the page contents inside the payload
};

std::vector<PageDataSpan> decode_pages_data(
    const std::vector<std::byte>& payload, std::size_t page_bytes);

}  // namespace gdsm::dsm::wire
