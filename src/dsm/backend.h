// DSM execution-backend selection: threads (in-process, the original) vs
// process (fork + shm_open/mmap pages + mprotect/SIGSEGV fault traps + a
// Unix-domain-socket data plane — src/dsm/proc).
//
// Both backends run the same protocol state machine and must produce
// bit-identical alignment results; the differential oracle and the fault
// plans gate the process backend exactly like GDSM_COMM gates the data
// plane.  The environment variable only seeds the *default* — an explicit
// DsmConfig::backend assignment always wins.
#pragma once

namespace gdsm::dsm {

enum class Backend {
  kThreads,  ///< one engine + service thread pair per node, shared heap
  kProcess,  ///< one OS process per node, shm segments, fetch-on-fault
};

/// The process-wide default backend: Backend::kThreads unless
/// GDSM_BACKEND=threads|process overrides it.  Parsed once at first use;
/// unknown values warn on stderr and fall back to threads.
Backend default_backend() noexcept;

/// Canonical name ("threads", "process") — carried by the run-report
/// dsm.backend field (schema v8).
const char* backend_name(Backend backend) noexcept;

}  // namespace gdsm::dsm
