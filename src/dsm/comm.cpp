// Data-plane mode resolution (GDSM_COMM) and the process-wide comm totals
// that feed the run-report "comm" section.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "dsm/config.h"
#include "dsm/stats.h"

namespace gdsm::dsm {

namespace {

CommConfig legacy_comm() {
  CommConfig c;
  c.batch_diffs = false;
  c.bulk_fetch = false;
  c.prefetch_pages = 0;
  return c;
}

// Resolved once at first use, like the simd GDSM_KERNEL forcing: the
// environment only seeds the *default* CommConfig, so a DsmConfig that
// assigns comm fields explicitly (tests, the differential oracle) is never
// affected by the variable.
const CommConfig& env_default() {
  static const CommConfig resolved = [] {
    CommConfig pick;  // built-in default: batched, no prefetch
    if (const char* env = std::getenv("GDSM_COMM"); env != nullptr) {
      if (std::strcmp(env, "legacy") == 0) {
        pick = legacy_comm();
      } else if (std::strcmp(env, "batched") == 0) {
        pick = CommConfig{};
      } else if (std::strcmp(env, "batched+prefetch") == 0) {
        pick.prefetch_pages = 4;
      } else {
        std::fprintf(stderr,
                     "gdsm: GDSM_COMM=%s unknown "
                     "(legacy|batched|batched+prefetch), using %s\n",
                     env, comm_mode_name(pick));
      }
    }
    return pick;
  }();
  return resolved;
}

struct AtomicComm {
  std::atomic<std::uint64_t> diff_batches_sent{0};
  std::atomic<std::uint64_t> diff_pages_batched{0};
  std::atomic<std::uint64_t> bulk_fetches{0};
  std::atomic<std::uint64_t> bulk_pages_fetched{0};
  std::atomic<std::uint64_t> prefetch_issued{0};
  std::atomic<std::uint64_t> prefetch_hits{0};
  std::atomic<std::uint64_t> prefetch_wasted{0};
  std::atomic<std::uint64_t> empty_diffs_suppressed{0};
  // v8 process-backend block: accounted by the supervisor when it folds
  // child stats back in, so the run-report dsm section sees them even
  // though they were incurred in other address spaces.
  std::atomic<std::uint64_t> peer_failures{0};
  std::atomic<std::uint64_t> segv_faults{0};
  std::atomic<std::uint64_t> pages_mapped{0};
  std::atomic<std::uint64_t> pages_protected{0};
  std::atomic<std::uint64_t> twins_created{0};
  std::atomic<std::uint64_t> socket_bytes_sent{0};
  std::atomic<std::uint64_t> socket_bytes_received{0};
};

AtomicComm g_comm;

}  // namespace

CommConfig default_comm() noexcept { return env_default(); }

const char* comm_mode_name(const CommConfig& comm) noexcept {
  if (!comm.batch_diffs && !comm.bulk_fetch && comm.prefetch_pages == 0) {
    return "legacy";
  }
  return comm.prefetch_pages > 0 ? "batched+prefetch" : "batched";
}

void account_comm_totals(const NodeStats& per_job) noexcept {
  const auto add = [](std::atomic<std::uint64_t>& slot, std::uint64_t v) {
    if (v != 0) slot.fetch_add(v, std::memory_order_relaxed);
  };
  add(g_comm.diff_batches_sent, per_job.diff_batches_sent);
  add(g_comm.diff_pages_batched, per_job.diff_pages_batched);
  add(g_comm.bulk_fetches, per_job.bulk_fetches);
  add(g_comm.bulk_pages_fetched, per_job.bulk_pages_fetched);
  add(g_comm.prefetch_issued, per_job.prefetch_issued);
  add(g_comm.prefetch_hits, per_job.prefetch_hits);
  add(g_comm.prefetch_wasted, per_job.prefetch_wasted);
  add(g_comm.empty_diffs_suppressed, per_job.empty_diffs_suppressed);
  add(g_comm.peer_failures, per_job.peer_failures);
  add(g_comm.segv_faults, per_job.segv_faults);
  add(g_comm.pages_mapped, per_job.pages_mapped);
  add(g_comm.pages_protected, per_job.pages_protected);
  add(g_comm.twins_created, per_job.twins_created);
  add(g_comm.socket_bytes_sent, per_job.socket_bytes_sent);
  add(g_comm.socket_bytes_received, per_job.socket_bytes_received);
}

NodeStats comm_totals() noexcept {
  NodeStats out;
  const auto get = [](const std::atomic<std::uint64_t>& slot) {
    return slot.load(std::memory_order_relaxed);
  };
  out.diff_batches_sent = get(g_comm.diff_batches_sent);
  out.diff_pages_batched = get(g_comm.diff_pages_batched);
  out.bulk_fetches = get(g_comm.bulk_fetches);
  out.bulk_pages_fetched = get(g_comm.bulk_pages_fetched);
  out.prefetch_issued = get(g_comm.prefetch_issued);
  out.prefetch_hits = get(g_comm.prefetch_hits);
  out.prefetch_wasted = get(g_comm.prefetch_wasted);
  out.empty_diffs_suppressed = get(g_comm.empty_diffs_suppressed);
  out.peer_failures = get(g_comm.peer_failures);
  out.segv_faults = get(g_comm.segv_faults);
  out.pages_mapped = get(g_comm.pages_mapped);
  out.pages_protected = get(g_comm.pages_protected);
  out.twins_created = get(g_comm.twins_created);
  out.socket_bytes_sent = get(g_comm.socket_bytes_sent);
  out.socket_bytes_received = get(g_comm.socket_bytes_received);
  return out;
}

void reset_comm_totals() noexcept {
  g_comm.diff_batches_sent.store(0, std::memory_order_relaxed);
  g_comm.diff_pages_batched.store(0, std::memory_order_relaxed);
  g_comm.bulk_fetches.store(0, std::memory_order_relaxed);
  g_comm.bulk_pages_fetched.store(0, std::memory_order_relaxed);
  g_comm.prefetch_issued.store(0, std::memory_order_relaxed);
  g_comm.prefetch_hits.store(0, std::memory_order_relaxed);
  g_comm.prefetch_wasted.store(0, std::memory_order_relaxed);
  g_comm.empty_diffs_suppressed.store(0, std::memory_order_relaxed);
  g_comm.peer_failures.store(0, std::memory_order_relaxed);
  g_comm.segv_faults.store(0, std::memory_order_relaxed);
  g_comm.pages_mapped.store(0, std::memory_order_relaxed);
  g_comm.pages_protected.store(0, std::memory_order_relaxed);
  g_comm.twins_created.store(0, std::memory_order_relaxed);
  g_comm.socket_bytes_sent.store(0, std::memory_order_relaxed);
  g_comm.socket_bytes_received.store(0, std::memory_order_relaxed);
}

}  // namespace gdsm::dsm
