// Payload codec implementations (see wire.h).  Moved out of node.cpp when
// the batched data plane grew the codec surface: both the node (producer)
// and the cluster service loop (consumer) now depend on these symmetrically.
#include "dsm/wire.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace gdsm::dsm::wire {

std::vector<std::byte> encode_pages(const std::vector<PageId>& pages) {
  std::vector<std::byte> out;
  out.reserve(pages.size() * sizeof(PageId));
  for (PageId p : pages) net::append_pod(out, p);
  return out;
}

std::vector<PageId> decode_pages(const std::vector<std::byte>& payload) {
  std::vector<PageId> out;
  out.reserve(payload.size() / sizeof(PageId));
  for (std::size_t off = 0; off + sizeof(PageId) <= payload.size();
       off += sizeof(PageId)) {
    out.push_back(net::read_pod<PageId>(payload, off));
  }
  return out;
}

std::vector<std::byte> encode_barrier_grant(const BarrierGrant& grant) {
  std::vector<std::byte> out;
  net::append_pod(out, static_cast<std::uint64_t>(grant.notices.size()));
  for (PageId p : grant.notices) net::append_pod(out, p);
  net::append_pod(out, static_cast<std::uint64_t>(grant.migrations.size()));
  for (const auto& [p, home] : grant.migrations) {
    net::append_pod(out, p);
    net::append_pod(out, static_cast<std::uint64_t>(home));
  }
  return out;
}

BarrierGrant decode_barrier_grant(const std::vector<std::byte>& payload) {
  BarrierGrant grant;
  std::size_t off = 0;
  const auto n_notices = net::read_pod<std::uint64_t>(payload, off);
  off += 8;
  grant.notices.reserve(n_notices);
  for (std::uint64_t k = 0; k < n_notices; ++k, off += 8) {
    grant.notices.push_back(net::read_pod<PageId>(payload, off));
  }
  const auto n_migr = net::read_pod<std::uint64_t>(payload, off);
  off += 8;
  for (std::uint64_t k = 0; k < n_migr; ++k, off += 16) {
    grant.migrations.emplace_back(
        net::read_pod<PageId>(payload, off),
        static_cast<int>(net::read_pod<std::uint64_t>(payload, off + 8)));
  }
  return grant;
}

std::size_t append_diff(std::vector<std::byte>& out, const std::byte* twin,
                        const std::byte* data, std::size_t n) {
  const std::size_t start_size = out.size();
  std::size_t i = 0;
  while (i < n) {
    if (twin[i] == data[i]) {
      ++i;
      continue;
    }
    // Start of a modified run; extend while differences are close together.
    std::size_t end = i + 1;
    std::size_t same = 0;
    for (std::size_t k = end; k < n && same < 8; ++k) {
      if (twin[k] == data[k]) {
        ++same;
      } else {
        end = k + 1;
        same = 0;
      }
    }
    net::append_pod(out, static_cast<std::uint32_t>(i));
    net::append_pod(out, static_cast<std::uint32_t>(end - i));
    out.insert(out.end(), data + i, data + end);
    i = end;
  }
  return out.size() - start_size;
}

std::size_t append_diff(std::vector<std::byte>& out,
                        const std::vector<std::byte>& twin,
                        const std::vector<std::byte>& data) {
  assert(twin.size() == data.size());
  return append_diff(out, twin.data(), data.data(), data.size());
}

std::vector<std::byte> make_diff(const std::vector<std::byte>& twin,
                                 const std::vector<std::byte>& data) {
  std::vector<std::byte> out;
  append_diff(out, twin, data);
  return out;
}

void apply_diff(std::byte* dst, std::size_t dst_size, const std::byte* records,
                std::size_t len) {
  std::size_t off = 0;
  while (off + 2 * sizeof(std::uint32_t) <= len) {
    std::uint32_t start;
    std::uint32_t run;
    std::memcpy(&start, records + off, sizeof(start));
    std::memcpy(&run, records + off + 4, sizeof(run));
    off += 8;
    if (start + run > dst_size || off + run > len) {
      throw std::runtime_error("apply_diff: malformed diff record");
    }
    std::memcpy(dst + start, records + off, run);
    off += run;
  }
}

void apply_diff(std::byte* dst, std::size_t dst_size,
                const std::vector<std::byte>& payload) {
  apply_diff(dst, dst_size, payload.data(), payload.size());
}

bool append_diff_batch_page(std::vector<std::byte>& out, PageId page,
                            const std::vector<std::byte>& twin,
                            const std::vector<std::byte>& data) {
  assert(twin.size() == data.size());
  return append_diff_batch_page(out, page, twin.data(), data.data(),
                                data.size());
}

bool append_diff_batch_page(std::vector<std::byte>& out, PageId page,
                            const std::byte* twin, const std::byte* data,
                            std::size_t n) {
  const std::size_t frame_start = out.size();
  net::append_pod(out, page);
  net::append_pod(out, std::uint32_t{0});  // record_bytes, patched below
  const std::size_t record_bytes = append_diff(out, twin, data, n);
  if (record_bytes == 0) {
    out.resize(frame_start);  // unchanged page: suppress the whole frame
    return false;
  }
  const auto len = static_cast<std::uint32_t>(record_bytes);
  std::memcpy(out.data() + frame_start + sizeof(PageId), &len, sizeof(len));
  return true;
}

std::vector<DiffBatchSpan> decode_diff_batch(
    const std::vector<std::byte>& payload) {
  std::vector<DiffBatchSpan> out;
  std::size_t off = 0;
  while (off + sizeof(PageId) + sizeof(std::uint32_t) <= payload.size()) {
    DiffBatchSpan span;
    span.page = net::read_pod<PageId>(payload, off);
    span.len = net::read_pod<std::uint32_t>(payload, off + sizeof(PageId));
    off += sizeof(PageId) + sizeof(std::uint32_t);
    if (off + span.len > payload.size()) {
      throw std::runtime_error("decode_diff_batch: truncated batch frame");
    }
    span.offset = off;
    off += span.len;
    out.push_back(span);
  }
  return out;
}

void append_page_data(std::vector<std::byte>& out, PageId page,
                      const std::byte* data, std::size_t page_bytes) {
  net::append_pod(out, page);
  out.insert(out.end(), data, data + page_bytes);
}

std::vector<PageDataSpan> decode_pages_data(
    const std::vector<std::byte>& payload, std::size_t page_bytes) {
  std::vector<PageDataSpan> out;
  const std::size_t frame = sizeof(PageId) + page_bytes;
  if (payload.size() % frame != 0) {
    throw std::runtime_error("decode_pages_data: truncated page frame");
  }
  out.reserve(payload.size() / frame);
  for (std::size_t off = 0; off + frame <= payload.size(); off += frame) {
    out.push_back(PageDataSpan{net::read_pod<PageId>(payload, off),
                               off + sizeof(PageId)});
  }
  return out;
}

}  // namespace gdsm::dsm::wire
