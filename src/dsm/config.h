// DSM system configuration, mirroring JIAJIA's tunables.
#pragma once

#include <cstddef>

namespace gdsm::dsm {

struct DsmConfig {
  /// Shared page size.  JIAJIA used the host VM page (4 KiB on the paper's
  /// Pentium II cluster).
  std::size_t page_bytes = 4096;

  /// Number of remote-page frames each node may cache ("there is a fixed
  /// number of remote pages that can be placed at the memory of a remote
  /// node; when this part of the memory is full, a replacement algorithm is
  /// executed").
  std::size_t cache_pages = 4096;

  /// Lock and condition-variable identifier spaces.  Managers are assigned
  /// id % n_nodes, as JIAJIA statically assigns each lock to a manager.
  int n_locks = 256;
  int n_cvs = 256;

  /// jia_config-style optional features; both default OFF, as JIAJIA sets
  /// all features at startup.
  ///
  /// home_migration: at each barrier, a page written by exactly one node in
  /// the interval migrates its home to that writer, eliminating its future
  /// diffs (implemented).
  /// load_balancing: accepted for API parity only; turning it ON throws at
  /// run() (computation migration is outside this reproduction's scope).
  bool home_migration = false;
  bool load_balancing = false;
};

}  // namespace gdsm::dsm
