// DSM system configuration, mirroring JIAJIA's tunables.
#pragma once

#include <cstddef>
#include <cstdint>

#include "dsm/backend.h"
#include "net/fault.h"

namespace gdsm::dsm {

/// Timeout/retry policy for a node's blocking protocol requests, the DSM
/// side of fault tolerance: when a reply does not arrive within the timeout,
/// idempotent requests (page fetch, diff) are retransmitted with linear
/// backoff; non-idempotent requests (locks, barriers, cvs, allocation) keep
/// waiting — the transport guarantees eventual delivery, the retry layer
/// only shortcuts *slow* paths.  Stale replies from superseded attempts are
/// matched by request id and dropped (NodeStats::stale_replies).
struct RetryPolicy {
  std::uint32_t timeout_us = 0;  ///< 0 = wait forever (retry layer off)
  std::uint32_t max_retries = 3; ///< resends per request before waiting it out
  std::uint32_t backoff_us = 200;///< timeout grows by this much per attempt
};

/// The DSM data plane's aggregation/pipelining knobs — the page-level
/// counterpart of the paper's block-aggregation lesson (§4.3): one exchange
/// per *batch* of pages instead of one blocking round-trip per page.
///
/// With everything off the node behaves bit-identically to the legacy
/// serial plane (one kGetPage per faulting page, one kDiff + ack per dirty
/// page), which is what the differential oracle compares against.  The
/// process-wide default comes from default_comm(), which honours
/// GDSM_COMM=legacy|batched|batched+prefetch once at first use; explicit
/// assignments in a DsmConfig always win over the environment.
struct CommConfig {
  /// Release-time diff propagation groups dirty pages by home node and
  /// ships one kDiffBatch per home, collecting the acks concurrently.
  bool batch_diffs = true;
  /// read_bytes spanning several uncached remote pages issues one kGetPages
  /// bulk fetch per home instead of one serial kGetPage fault per page.
  bool bulk_fetch = true;
  /// Sequential read-ahead depth: when a read fault extends a forward page
  /// scan, the next `prefetch_pages` pages are requested asynchronously so
  /// the fetch latency overlaps the caller's compute.  0 = off.
  std::uint32_t prefetch_pages = 0;
  /// Outstanding-request window for batched release acks and bulk fetches
  /// (send up to this many before the first reply must arrive).
  std::uint32_t max_outstanding = 8;
  /// Upper bound on pages carried by one kGetPages request (also caps the
  /// prefetch issue size); bounded by the page-cache capacity at use sites.
  std::uint32_t max_batch_pages = 64;

  friend bool operator==(const CommConfig&, const CommConfig&) = default;
};

/// The process-wide CommConfig defaults: CommConfig{} unless GDSM_COMM
/// forces a mode ("legacy" all-off, "batched" coalescing only,
/// "batched+prefetch" coalescing plus depth-4 read-ahead).  Parsed once;
/// unknown values warn on stderr and fall back to the built-in default.
CommConfig default_comm() noexcept;

/// Canonical mode name of a CommConfig ("legacy", "batched",
/// "batched+prefetch") — the string the run-report comm section carries.
const char* comm_mode_name(const CommConfig& comm) noexcept;

struct DsmConfig {
  /// Shared page size.  JIAJIA used the host VM page (4 KiB on the paper's
  /// Pentium II cluster).
  std::size_t page_bytes = 4096;

  /// Number of remote-page frames each node may cache ("there is a fixed
  /// number of remote pages that can be placed at the memory of a remote
  /// node; when this part of the memory is full, a replacement algorithm is
  /// executed").
  std::size_t cache_pages = 4096;

  /// Lock and condition-variable identifier spaces.  Managers are assigned
  /// id % n_nodes, as JIAJIA statically assigns each lock to a manager.
  int n_locks = 256;
  int n_cvs = 256;

  /// jia_config-style optional features; both default OFF, as JIAJIA sets
  /// all features at startup.
  ///
  /// home_migration: at each barrier, a page written by exactly one node in
  /// the interval migrates its home to that writer, eliminating its future
  /// diffs (implemented).
  /// load_balancing: accepted for API parity only; turning it ON throws at
  /// run() (computation migration is outside this reproduction's scope).
  bool home_migration = false;
  bool load_balancing = false;

  /// Reply timeout/retry policy of the nodes (off by default).
  RetryPolicy retry{};

  /// Data-plane aggregation knobs; the default honours GDSM_COMM.
  CommConfig comm = default_comm();

  /// Simulated network misbehaviour of the cluster interconnect
  /// (net/fault.h); a default plan injects nothing.
  net::FaultPlan faults{};

  /// Execution backend; the default honours GDSM_BACKEND=threads|process
  /// (dsm/backend.h).  Both backends run the same protocol and must be
  /// bit-identical; "process" maps shared pages via shm_open/mmap and traps
  /// remote access with mprotect+SIGSEGV (src/dsm/proc).
  Backend backend = default_backend();

  /// Capacity of the process backend's shared data segment (the global
  /// space all nodes allocate from).  tmpfs backs it lazily, so a generous
  /// default costs only address space; alloc beyond it throws.  Ignored by
  /// the thread backend, which grows its heap-backed space on demand.
  std::size_t proc_space_bytes = 256ull << 20;
};

}  // namespace gdsm::dsm
