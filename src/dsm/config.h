// DSM system configuration, mirroring JIAJIA's tunables.
#pragma once

#include <cstddef>
#include <cstdint>

#include "net/fault.h"

namespace gdsm::dsm {

/// Timeout/retry policy for a node's blocking protocol requests, the DSM
/// side of fault tolerance: when a reply does not arrive within the timeout,
/// idempotent requests (page fetch, diff) are retransmitted with linear
/// backoff; non-idempotent requests (locks, barriers, cvs, allocation) keep
/// waiting — the transport guarantees eventual delivery, the retry layer
/// only shortcuts *slow* paths.  Stale replies from superseded attempts are
/// matched by request id and dropped (NodeStats::stale_replies).
struct RetryPolicy {
  std::uint32_t timeout_us = 0;  ///< 0 = wait forever (retry layer off)
  std::uint32_t max_retries = 3; ///< resends per request before waiting it out
  std::uint32_t backoff_us = 200;///< timeout grows by this much per attempt
};

struct DsmConfig {
  /// Shared page size.  JIAJIA used the host VM page (4 KiB on the paper's
  /// Pentium II cluster).
  std::size_t page_bytes = 4096;

  /// Number of remote-page frames each node may cache ("there is a fixed
  /// number of remote pages that can be placed at the memory of a remote
  /// node; when this part of the memory is full, a replacement algorithm is
  /// executed").
  std::size_t cache_pages = 4096;

  /// Lock and condition-variable identifier spaces.  Managers are assigned
  /// id % n_nodes, as JIAJIA statically assigns each lock to a manager.
  int n_locks = 256;
  int n_cvs = 256;

  /// jia_config-style optional features; both default OFF, as JIAJIA sets
  /// all features at startup.
  ///
  /// home_migration: at each barrier, a page written by exactly one node in
  /// the interval migrates its home to that writer, eliminating its future
  /// diffs (implemented).
  /// load_balancing: accepted for API parity only; turning it ON throws at
  /// run() (computation migration is outside this reproduction's scope).
  bool home_migration = false;
  bool load_balancing = false;

  /// Reply timeout/retry policy of the nodes (off by default).
  RetryPolicy retry{};

  /// Simulated network misbehaviour of the cluster interconnect
  /// (net/fault.h); a default plan injects nothing.
  net::FaultPlan faults{};
};

}  // namespace gdsm::dsm
