// The DSM cluster runner: SPMD programs over N simulated workstation nodes.
//
// Each node gets two threads: an *application* (engine) thread running the
// user's programs and a *service* thread standing in for JIAJIA's SIGIO
// handler, serving page fetches, diffs and lock/barrier/cv management for
// the ids it manages (id % n_nodes).
//
// The cluster is *persistent*: nodes and their threads are created once and
// survive across programs.  Programs ("jobs") are admitted one at a time
// through submit()/await(); between jobs the manager state is reset and
// each node's page cache is swept down to the clean frames of explicitly
// retained pages (retain_range), so a long-lived alignment service can keep
// a subject genome warm while every other page reverts to the cold-cache
// semantics of a fresh node.  A job that throws does not poison the pool:
// its peers are unwound by closing the reply boxes only, the boxes are
// drained and re-armed, and the next job is admitted as if the failure
// never happened (request ids are never reused, so a reply that raced the
// abort can only ever be dropped as stale).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "dsm/config.h"
#include "dsm/global_space.h"
#include "dsm/manager.h"
#include "dsm/node.h"
#include "dsm/stats.h"
#include "net/transport.h"

namespace gdsm::dsm {

namespace proc {
class Supervisor;
}

class Cluster {
  struct Job;  // defined privately below; Ticket only carries a handle

 public:
  explicit Cluster(int n_nodes, DsmConfig cfg = {});
  ~Cluster();
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int nodes() const noexcept { return n_nodes_; }
  const DsmConfig& config() const noexcept { return cfg_; }

  /// Host-side allocation (between jobs); same semantics as Node::alloc.
  GlobalAddr alloc(std::size_t bytes, int home = -1) {
    return space_.alloc(bytes, home);
  }
  GlobalAddr alloc_striped(std::size_t bytes) { return space_.alloc_striped(bytes); }

  /// Opaque handle to a submitted job; await() redeems it.
  class Ticket {
   public:
    Ticket() = default;
    explicit operator bool() const noexcept { return job_ != nullptr; }

   private:
    friend class Cluster;
    std::shared_ptr<Job> job_;
  };

  /// Enqueues `program` to run once on every node (SPMD).  Jobs execute
  /// strictly one at a time in submission order; the persistent node pool
  /// (threads, warm retained pages, cumulative traffic counters) carries
  /// over between them.  Lazily starts the engine on first use.
  Ticket submit(std::function<void(Node&)> program);

  /// Blocks until the ticket's job has finished and returns that job's
  /// stats (per-node counters are per-job; traffic/fault counters are
  /// cumulative).  Exceptions thrown by node programs are rethrown here:
  /// a single failure rethrows the original exception, multiple failures
  /// throw one aggregate std::runtime_error listing every culprit.  May be
  /// called at most once per ticket and from one thread.
  DsmStats await(const Ticket& ticket);

  /// submit() + await(): runs `program` once on every node and joins.  May
  /// be called multiple times; manager state is reset between runs, traffic
  /// counters accumulate.  Exceptions thrown by any node program are
  /// rethrown here.
  void run(const std::function<void(Node&)>& program);

  /// Marks every page overlapping [addr, addr+bytes) as *resident*: the
  /// end-of-job sweep keeps their clean cached frames, so read-only data
  /// (an alignment service's subject genome) stays warm across jobs.
  /// After a failed job the frames are dropped anyway (cold restart) but
  /// the range stays marked and re-warms on the next touch.
  void retain_range(GlobalAddr addr, std::size_t bytes);

  /// Un-marks every retained page; frames are reclaimed at the next job end.
  void clear_retained();

  /// Host-side write straight into the home copies (no coherence traffic).
  /// Only legal between jobs and only for ranges no node has cached — i.e.
  /// freshly allocated regions being seeded with service data.
  void host_write(GlobalAddr addr, const void* data, std::size_t bytes);

  /// Stops the engine after draining all queued jobs and joins every
  /// thread.  Idempotent; also run by the destructor.  submit() after
  /// stop() restarts the engine.
  void stop();

  /// Stats of the most recent job (node counters) plus cumulative traffic.
  DsmStats stats() const;

  /// Cumulative per-node wire traffic (the src/obs report hook; cheaper
  /// than stats() when only the transport picture is wanted).  Backed by
  /// the transport (threads) or the supervisor's router (process).
  std::vector<net::TrafficCounters> traffic_snapshot() const;

  GlobalSpace& space() noexcept { return space_; }

 private:
  friend class ThreadNode;

  /// One SPMD program moving through the engine.  All fields are guarded
  /// by jobs_mu_ except `program`, which is only read by engine threads
  /// after they claim the job.
  struct Job {
    std::function<void(Node&)> program;
    std::vector<char> started;  ///< per node: engine thread claimed it
    int finished = 0;           ///< engine threads done (success or failure)
    bool done = false;          ///< finalized; stats valid, safe to await
    std::exception_ptr first_error;
    std::vector<NodeFailure> failures;  ///< typed (node, kind, what)
    std::vector<NodeStats> stats;  ///< per-job node counters (take-and-zero)
  };

  void reset_manager_state();
  void service_loop(int node);
  std::uint64_t home_migrations() const;  ///< summed over the managers

  void ensure_started_locked();   ///< spawns threads; jobs_mu_ held
  void engine_loop(int node);     ///< persistent application thread
  void proc_engine_loop();        ///< process backend: job dispatcher
  void finalize_job(Job& job);    ///< last finisher; jobs_mu_ held
  void sync_service_threads();    ///< barrier: service boxes fully drained
  [[noreturn]] static void throw_failures(const Job& job);

  int n_nodes_;
  DsmConfig cfg_;
  GlobalSpace space_;
  net::Transport transport_;

  /// One protocol state machine per node, each touched only by that node's
  /// service thread (dsm/manager.h — shared with the process backend).
  std::vector<std::unique_ptr<ProtocolManager>> managers_;
  /// Cluster-wide request-id source: ids stay unique across nodes AND
  /// across jobs, so a stale reply can never match a later request.
  std::atomic<std::uint64_t> request_ids_{0};

  // --- persistent engine ----------------------------------------------
  mutable std::mutex jobs_mu_;
  std::condition_variable jobs_cv_;  ///< engine threads: new job / stopping
  std::condition_variable done_cv_;  ///< awaiters and stop(): job finalized
  bool engine_running_ = false;
  bool stopping_ = false;
  std::shared_ptr<Job> current_;            ///< job being executed, if any
  std::deque<std::shared_ptr<Job>> queued_;
  std::vector<std::unique_ptr<ThreadNode>> nodes_;
  /// Process backend only: launcher + node 0 + router, persistent across
  /// jobs AND across stop() (like transport_/managers_, its cumulative
  /// traffic and home-migration counters survive engine restarts).
  std::unique_ptr<proc::Supervisor> supervisor_;
  std::vector<std::thread> service_threads_;
  std::vector<std::thread> engine_threads_;
  std::set<PageId> retained_pages_;  ///< survive the end-of-job cache sweep

  std::mutex sync_mu_;  ///< service-drain barrier (leaf lock)
  std::condition_variable sync_cv_;
  int sync_acks_ = 0;

  std::vector<NodeStats> last_run_stats_;
};

}  // namespace gdsm::dsm
