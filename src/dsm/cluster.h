// The DSM cluster runner: SPMD programs over N simulated workstation nodes.
//
// Each node gets two threads: an *application* thread running the user's
// program and a *service* thread standing in for JIAJIA's SIGIO handler,
// serving page fetches, diffs and lock/barrier/cv management for the ids it
// manages (id % n_nodes).
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "dsm/config.h"
#include "dsm/global_space.h"
#include "dsm/node.h"
#include "dsm/stats.h"
#include "net/transport.h"

namespace gdsm::dsm {

class Cluster {
 public:
  explicit Cluster(int n_nodes, DsmConfig cfg = {});

  int nodes() const noexcept { return n_nodes_; }
  const DsmConfig& config() const noexcept { return cfg_; }

  /// Host-side allocation (before run()); same semantics as Node::alloc.
  GlobalAddr alloc(std::size_t bytes, int home = -1) {
    return space_.alloc(bytes, home);
  }
  GlobalAddr alloc_striped(std::size_t bytes) { return space_.alloc_striped(bytes); }

  /// Runs `program` once on every node (SPMD) and joins.  May be called
  /// multiple times; manager state is reset between runs, traffic counters
  /// accumulate.  Exceptions thrown by any node program are rethrown here.
  void run(const std::function<void(Node&)>& program);

  /// Stats of the most recent run() (node counters) plus cumulative traffic.
  DsmStats stats() const;

  /// Cumulative per-node wire traffic (the src/obs report hook; cheaper
  /// than stats() when only the transport picture is wanted).
  std::vector<net::TrafficCounters> traffic_snapshot() const {
    return transport_.per_node_counters();
  }

  GlobalSpace& space() noexcept { return space_; }

 private:
  friend class Node;

  // --- manager state; each element is touched only by the service thread
  // of its managing node -----------------------------------------------
  /// A node blocked in a request, remembered with the request id its grant
  /// must echo (replies are matched by id on the requester side, so retried
  /// requests cannot be satisfied by a stale reply).
  struct Waiter {
    int node = -1;
    std::uint64_t req_id = 0;
  };
  struct LockState {
    bool held = false;
    int holder = -1;
    std::deque<Waiter> waiting;
    std::vector<PageId> notice_log;
    std::vector<std::size_t> last_seen;  // per node, index into notice_log
  };
  struct CvState {
    int count = 0;
    std::deque<Waiter> waiters;
    std::vector<PageId> pending_notices;
  };
  struct BarrierState {
    int arrived = 0;
    std::vector<std::uint64_t> arrival_req;  // per node, echoed in the grant
    std::vector<PageId> notices;
    /// page -> single writer this interval, or -1 once multiple nodes wrote
    /// it (used by the home-migration policy).
    std::map<PageId, int> writers;
  };

  void reset_manager_state();
  void service_loop(int node);
  void handle_message(int node, net::Message msg);

  void grant_lock(int manager, int lock_id, const Waiter& to);

  int n_nodes_;
  DsmConfig cfg_;
  GlobalSpace space_;
  net::Transport transport_;

  std::vector<std::vector<LockState>> locks_;  // [manager][lock_id / n]
  std::vector<std::vector<CvState>> cvs_;      // [manager][cv_id / n]
  BarrierState barrier_;                       // managed by node 0
  std::atomic<std::uint64_t> home_migrations_{0};
  /// Cluster-wide request-id source: ids stay unique across nodes AND
  /// across run() calls, so a stale reply can never match a later request.
  std::atomic<std::uint64_t> request_ids_{0};

  std::vector<NodeStats> last_run_stats_;
};

}  // namespace gdsm::dsm
