#include "dsm/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dsm/proc/supervisor.h"
#include "dsm/wire.h"

namespace gdsm::dsm {

Cluster::Cluster(int n_nodes, DsmConfig cfg)
    : n_nodes_(n_nodes),
      cfg_(cfg),
      space_(n_nodes, cfg),
      // The process backend runs its own injector inside the supervisor;
      // don't spin up a second delivery thread in the unused transport.
      transport_(n_nodes, cfg.backend == Backend::kThreads ? cfg.faults
                                                          : net::FaultPlan{}) {
  if (n_nodes <= 0) throw std::invalid_argument("Cluster: need >= 1 node");
  reset_manager_state();
}

Cluster::~Cluster() { stop(); }

void Cluster::reset_manager_state() {
  // The process backend's per-node managers live in the node processes (and
  // node 0's in the supervisor, which resets it per job).
  if (cfg_.backend == Backend::kProcess) return;
  if (managers_.empty()) {
    managers_.reserve(static_cast<std::size_t>(n_nodes_));
    for (int n = 0; n < n_nodes_; ++n) {
      managers_.push_back(std::make_unique<ProtocolManager>(
          n, n_nodes_, cfg_.n_locks, cfg_.n_cvs, cfg_.home_migration, space_,
          [this](net::Message msg) { transport_.send(std::move(msg)); }));
    }
    return;  // construction already leaves each manager reset
  }
  for (auto& m : managers_) m->reset();
}

std::uint64_t Cluster::home_migrations() const {
  if (cfg_.backend == Backend::kProcess) {
    // Only node 0's manager ever migrates homes (barrier owner), and that
    // manager lives in the supervisor.
    return supervisor_ ? supervisor_->home_migrations() : 0;
  }
  std::uint64_t total = 0;
  for (const auto& m : managers_) total += m->home_migrations();
  return total;
}

void Cluster::service_loop(int node) {
  while (auto msg = transport_.service_box(node).pop()) {
    if (msg->type == net::MsgType::kStop) {
      if (msg->a == 0) break;
      // Drain marker (a == 1): everything queued before it has now been
      // fully handled; acknowledge so the finalizer may reset manager state.
      {
        const std::scoped_lock guard(sync_mu_);
        ++sync_acks_;
      }
      sync_cv_.notify_all();
      continue;
    }
    managers_[static_cast<std::size_t>(node)]->handle_message(*std::move(msg));
  }
}

void Cluster::sync_service_threads() {
  {
    const std::scoped_lock guard(sync_mu_);
    sync_acks_ = 0;
  }
  for (int i = 0; i < n_nodes_; ++i) {
    net::Message marker;
    marker.src = -1;  // control: bypasses the fault injector
    marker.dst = i;
    marker.type = net::MsgType::kStop;
    marker.a = 1;
    transport_.send(std::move(marker));
  }
  std::unique_lock<std::mutex> lk(sync_mu_);
  sync_cv_.wait(lk, [&] { return sync_acks_ == n_nodes_; });
}

void Cluster::ensure_started_locked() {
  if (engine_running_) return;
  if (cfg_.backend == Backend::kProcess) {
    if (!supervisor_) {
      supervisor_ = std::make_unique<proc::Supervisor>(n_nodes_, cfg_, space_);
    }
    engine_threads_.emplace_back([this] { proc_engine_loop(); });
    engine_running_ = true;
    return;
  }
  nodes_.clear();
  nodes_.reserve(static_cast<std::size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) {
    nodes_.push_back(std::make_unique<ThreadNode>(*this, i));
  }
  reset_manager_state();
  service_threads_.reserve(static_cast<std::size_t>(n_nodes_));
  engine_threads_.reserve(static_cast<std::size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) {
    service_threads_.emplace_back([this, i] { service_loop(i); });
    engine_threads_.emplace_back([this, i] { engine_loop(i); });
  }
  engine_running_ = true;
}

void Cluster::engine_loop(int node) {
  std::unique_lock<std::mutex> lk(jobs_mu_);
  for (;;) {
    jobs_cv_.wait(lk, [&] {
      return (current_ &&
              !current_->started[static_cast<std::size_t>(node)]) ||
             (stopping_ && !current_);
    });
    if (!current_) return;  // stopping, queue drained
    const std::shared_ptr<Job> job = current_;
    job->started[static_cast<std::size_t>(node)] = 1;
    lk.unlock();
    try {
      job->program(*nodes_[static_cast<std::size_t>(node)]);
    } catch (...) {
      // Failures are collected per node so a multi-node crash reports every
      // culprit, not just whichever thread lost the race to store its
      // exception.
      std::string what = "unknown exception";
      net::ErrorKind kind = net::ErrorKind::kUnknown;
      try {
        throw;
      } catch (const std::exception& e) {
        what = e.what();
        kind = net::classify_error(e);
      } catch (...) {
      }
      {
        const std::scoped_lock guard(jobs_mu_);
        if (!job->first_error) job->first_error = std::current_exception();
        job->failures.push_back(NodeFailure{node, kind, std::move(what)});
      }
      // Unblock peers stuck in barriers/cv waits so the job can unwind.
      // Only the reply boxes close: the service threads stay alive, and
      // finalize_job() re-arms the boxes before the next job is admitted.
      transport_.abort_requests();
    }
    lk.lock();
    if (++job->finished == n_nodes_) finalize_job(*job);
  }
}

void Cluster::proc_engine_loop() {
  // One dispatcher thread stands in for all per-node engine threads: the
  // supervisor runs node 0's program on this thread and forks a process per
  // other node, so job admission stays strictly serial by construction.
  std::unique_lock<std::mutex> lk(jobs_mu_);
  for (;;) {
    jobs_cv_.wait(lk, [&] { return current_ != nullptr || stopping_; });
    if (!current_) return;  // stopping, queue drained
    const std::shared_ptr<Job> job = current_;
    std::fill(job->started.begin(), job->started.end(), 1);
    const std::set<PageId> keep = retained_pages_;
    lk.unlock();
    proc::Supervisor::Outcome out = supervisor_->run_job(job->program, keep);
    lk.lock();
    job->failures = std::move(out.failures);
    job->stats = std::move(out.stats);
    if (!job->failures.empty()) {
      // throw_failures rethrows first_error verbatim for a single failure:
      // preserve node 0's original exception when it is the culprit, and
      // rebuild a child's exception from its typed kDone tag otherwise (the
      // original object died with the process, but the type survives).
      if (job->failures.size() == 1 && job->failures.front().node == 0 &&
          out.node0_error) {
        job->first_error = out.node0_error;
      } else {
        const NodeFailure& f = job->failures.front();
        job->first_error = net::make_error(f.kind, f.what);
      }
    }
    last_run_stats_ = job->stats;
    job->finished = n_nodes_;
    job->done = true;
    if (queued_.empty()) {
      current_ = nullptr;
    } else {
      current_ = queued_.front();
      queued_.pop_front();
    }
    jobs_cv_.notify_all();
    done_cv_.notify_all();
  }
}

void Cluster::finalize_job(Job& job) {
  // All engine threads are done with this job; only service threads are
  // still active.  Let fault-delayed messages land, then force every
  // service thread through a drain marker so queued protocol work (stray
  // releases/signals of this job) is applied before the manager reset.
  transport_.quiesce();
  sync_service_threads();
  transport_.quiesce();  // replies emitted during the drain settle too

  const bool failed = !job.failures.empty();
  if (failed) {
    // Unwound requesters saw closed reply boxes; drop any reply that raced
    // the abort (ids are never reused, so a survivor could only ever be
    // dropped as stale) and re-arm the boxes for the next job.
    transport_.reset_reply_boxes();
  }
  // Sweep every cache.  A failed job forfeits even the retained pages
  // (cold restart — the range stays marked and re-warms on next touch);
  // a clean job keeps resident data warm.
  const std::set<PageId> keep = failed ? std::set<PageId>{} : retained_pages_;
  job.stats.clear();
  for (auto& n : nodes_) job.stats.push_back(n->end_of_job(keep));
  reset_manager_state();
  last_run_stats_ = job.stats;
  job.done = true;

  if (queued_.empty()) {
    current_ = nullptr;
  } else {
    current_ = queued_.front();
    queued_.pop_front();
  }
  jobs_cv_.notify_all();
  done_cv_.notify_all();
}

Cluster::Ticket Cluster::submit(std::function<void(Node&)> program) {
  if (cfg_.load_balancing) {
    throw std::runtime_error(
        "DSM: load_balancing is accepted for jia_config parity but not "
        "implemented in this reproduction (home_migration IS implemented)");
  }
  const std::scoped_lock guard(jobs_mu_);
  if (stopping_) throw std::logic_error("Cluster: submit during stop()");
  ensure_started_locked();
  auto job = std::make_shared<Job>();
  job->program = std::move(program);
  job->started.assign(static_cast<std::size_t>(n_nodes_), 0);
  if (current_) {
    queued_.push_back(job);
  } else {
    current_ = job;
  }
  jobs_cv_.notify_all();
  Ticket t;
  t.job_ = std::move(job);
  return t;
}

void Cluster::throw_failures(const Job& job) {
  if (job.failures.size() == 1) std::rethrow_exception(job.first_error);
  auto failures = job.failures;
  std::sort(failures.begin(), failures.end(),
            [](const NodeFailure& a, const NodeFailure& b) {
              if (a.node != b.node) return a.node < b.node;
              return a.what < b.what;
            });
  std::string combined = "DSM: " + std::to_string(failures.size()) +
                         " node programs failed:";
  for (const auto& f : failures) {
    combined += "\n  node " + std::to_string(f.node) + " [" +
                net::error_kind_name(f.kind) + "]: " + f.what;
  }
  throw std::runtime_error(combined);
}

DsmStats Cluster::await(const Ticket& ticket) {
  if (!ticket.job_) throw std::logic_error("Cluster: await on empty ticket");
  std::unique_lock<std::mutex> lk(jobs_mu_);
  done_cv_.wait(lk, [&] { return ticket.job_->done; });
  const Job& job = *ticket.job_;
  if (!job.failures.empty()) throw_failures(job);
  DsmStats out;
  out.backend = cfg_.backend;
  out.node = job.stats;
  out.home_migrations = home_migrations();
  if (cfg_.backend == Backend::kProcess) {
    out.traffic = supervisor_->traffic();
    out.faults = supervisor_->fault_counters();
  } else {
    out.traffic = transport_.per_node_counters();
    out.faults = transport_.fault_counters();
  }
  return out;
}

void Cluster::run(const std::function<void(Node&)>& program) {
  await(submit(program));
}

void Cluster::retain_range(GlobalAddr addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::scoped_lock guard(jobs_mu_);
  const PageId first = space_.page_of(addr);
  const PageId last = space_.page_of(addr + bytes - 1);
  for (PageId p = first; p <= last; ++p) retained_pages_.insert(p);
}

void Cluster::clear_retained() {
  const std::scoped_lock guard(jobs_mu_);
  retained_pages_.clear();
}

void Cluster::host_write(GlobalAddr addr, const void* data, std::size_t bytes) {
  const auto* in = static_cast<const std::byte*>(data);
  const std::size_t page_bytes = space_.page_bytes();
  while (bytes > 0) {
    const PageId p = space_.page_of(addr);
    const std::size_t off = space_.offset_in_page(addr);
    const std::size_t chunk = std::min(bytes, page_bytes - off);
    {
      const std::scoped_lock guard(space_.page_mutex(p));
      std::memcpy(space_.home_data(p) + off, in, chunk);
    }
    addr += chunk;
    in += chunk;
    bytes -= chunk;
  }
}

void Cluster::stop() {
  std::unique_lock<std::mutex> lk(jobs_mu_);
  if (!engine_running_) return;
  stopping_ = true;
  jobs_cv_.notify_all();
  // finalize_job() keeps promoting queued jobs while we wait, so the queue
  // drains before the engine threads see (stopping_ && !current_) and exit.
  done_cv_.wait(lk, [&] { return current_ == nullptr; });
  std::vector<std::thread> engines = std::move(engine_threads_);
  std::vector<std::thread> services = std::move(service_threads_);
  engine_threads_.clear();
  service_threads_.clear();
  lk.unlock();
  for (auto& t : engines) t.join();
  if (cfg_.backend == Backend::kThreads) {
    for (int i = 0; i < n_nodes_; ++i) {
      net::Message halt;
      halt.src = -1;
      halt.dst = i;
      halt.type = net::MsgType::kStop;
      halt.a = 0;
      transport_.send(std::move(halt));
    }
  }
  for (auto& t : services) t.join();
  lk.lock();
  nodes_.clear();
  stopping_ = false;
  engine_running_ = false;
}

DsmStats Cluster::stats() const {
  const std::scoped_lock guard(jobs_mu_);
  DsmStats out;
  out.backend = cfg_.backend;
  out.node = last_run_stats_;
  out.home_migrations = home_migrations();
  if (cfg_.backend == Backend::kProcess) {
    if (supervisor_) {
      out.traffic = supervisor_->traffic();
      out.faults = supervisor_->fault_counters();
    }
  } else {
    out.traffic = transport_.per_node_counters();
    out.faults = transport_.fault_counters();
  }
  return out;
}

std::vector<net::TrafficCounters> Cluster::traffic_snapshot() const {
  if (cfg_.backend == Backend::kProcess) {
    return supervisor_ ? supervisor_->traffic()
                       : std::vector<net::TrafficCounters>(
                             static_cast<std::size_t>(n_nodes_));
  }
  return transport_.per_node_counters();
}

}  // namespace gdsm::dsm
