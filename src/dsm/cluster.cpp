#include "dsm/cluster.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "dsm/wire.h"

namespace gdsm::dsm {

Cluster::Cluster(int n_nodes, DsmConfig cfg)
    : n_nodes_(n_nodes),
      cfg_(cfg),
      space_(n_nodes, cfg),
      transport_(n_nodes, cfg.faults) {
  if (n_nodes <= 0) throw std::invalid_argument("Cluster: need >= 1 node");
  reset_manager_state();
}

void Cluster::reset_manager_state() {
  const int per_node_locks = (cfg_.n_locks + n_nodes_ - 1) / n_nodes_;
  const int per_node_cvs = (cfg_.n_cvs + n_nodes_ - 1) / n_nodes_;
  locks_.assign(static_cast<std::size_t>(n_nodes_), {});
  cvs_.assign(static_cast<std::size_t>(n_nodes_), {});
  for (int n = 0; n < n_nodes_; ++n) {
    locks_[n].resize(static_cast<std::size_t>(per_node_locks));
    for (auto& l : locks_[n]) l.last_seen.assign(static_cast<std::size_t>(n_nodes_), 0);
    cvs_[n].resize(static_cast<std::size_t>(per_node_cvs));
  }
  barrier_ = BarrierState{};
}

void Cluster::grant_lock(int manager, int lock_id, const Waiter& to) {
  LockState& l = locks_[manager][static_cast<std::size_t>(lock_id / n_nodes_)];
  l.held = true;
  l.holder = to.node;
  net::Message grant;
  grant.src = manager;
  grant.dst = to.node;
  grant.type = net::MsgType::kAcquireGrant;
  grant.to_reply_box = true;
  grant.a = static_cast<std::uint64_t>(lock_id);
  grant.c = to.req_id;
  // Write notices this acquirer has not yet seen for this lock's scope.
  std::vector<PageId> unseen(
      l.notice_log.begin() + static_cast<std::ptrdiff_t>(l.last_seen[to.node]),
      l.notice_log.end());
  l.last_seen[to.node] = l.notice_log.size();
  grant.payload = wire::encode_pages(unseen);
  transport_.send(std::move(grant));

  // Garbage-collect the notice log: entries every node has seen can never
  // be granted again, so drop the common prefix (bounds memory on
  // long-running lock-heavy programs).
  const std::size_t seen_by_all =
      *std::min_element(l.last_seen.begin(), l.last_seen.end());
  if (seen_by_all > 1024) {
    l.notice_log.erase(l.notice_log.begin(),
                       l.notice_log.begin() +
                           static_cast<std::ptrdiff_t>(seen_by_all));
    for (auto& seen : l.last_seen) seen -= seen_by_all;
  }
}

void Cluster::handle_message(int node, net::Message msg) {
  using net::MsgType;
  switch (msg.type) {
    case MsgType::kGetPage: {
      const PageId p = msg.a;
      assert(space_.home_of(p) == node);
      net::Message reply;
      reply.src = node;
      reply.dst = msg.src;
      reply.type = MsgType::kPageData;
      reply.to_reply_box = true;
      reply.a = p;
      reply.c = msg.c;
      reply.payload.resize(space_.page_bytes());
      {
        const std::scoped_lock guard(space_.page_mutex(p));
        std::memcpy(reply.payload.data(), space_.home_data(p),
                    space_.page_bytes());
      }
      transport_.send(std::move(reply));
      break;
    }
    case MsgType::kDiff: {
      const PageId p = msg.a;
      assert(space_.home_of(p) == node);
      {
        const std::scoped_lock guard(space_.page_mutex(p));
        wire::apply_diff(space_.home_data(p), space_.page_bytes(), msg.payload);
      }
      net::Message ack;
      ack.src = node;
      ack.dst = msg.src;
      ack.type = MsgType::kDiffAck;
      ack.to_reply_box = true;
      ack.a = p;
      ack.c = msg.c;
      transport_.send(std::move(ack));
      break;
    }
    case MsgType::kAcquire: {
      const int lock_id = static_cast<int>(msg.a);
      LockState& l = locks_[node][static_cast<std::size_t>(lock_id / n_nodes_)];
      if (l.held) {
        l.waiting.push_back(Waiter{msg.src, msg.c});
      } else {
        grant_lock(node, lock_id, Waiter{msg.src, msg.c});
      }
      break;
    }
    case MsgType::kRelease: {
      const int lock_id = static_cast<int>(msg.a);
      LockState& l = locks_[node][static_cast<std::size_t>(lock_id / n_nodes_)];
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      l.notice_log.insert(l.notice_log.end(), notices.begin(), notices.end());
      l.held = false;
      l.holder = -1;
      if (!l.waiting.empty()) {
        const Waiter next = l.waiting.front();
        l.waiting.pop_front();
        grant_lock(node, lock_id, next);
      }
      break;
    }
    case MsgType::kBarrier: {
      assert(node == 0);
      if (barrier_.arrival_req.empty()) {
        barrier_.arrival_req.assign(static_cast<std::size_t>(n_nodes_), 0);
      }
      barrier_.arrival_req[static_cast<std::size_t>(msg.src)] = msg.c;
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      barrier_.notices.insert(barrier_.notices.end(), notices.begin(),
                              notices.end());
      for (PageId p : notices) {
        const auto [it, inserted] = barrier_.writers.emplace(p, msg.src);
        if (!inserted && it->second != msg.src) it->second = -1;
      }
      if (++barrier_.arrived == n_nodes_) {
        std::sort(barrier_.notices.begin(), barrier_.notices.end());
        barrier_.notices.erase(
            std::unique(barrier_.notices.begin(), barrier_.notices.end()),
            barrier_.notices.end());

        wire::BarrierGrant grant_body;
        grant_body.notices = barrier_.notices;
        if (cfg_.home_migration) {
          // Home migration: a page written by exactly one node this interval
          // migrates its home to that writer, so its future modifications
          // need no diffs at all.
          for (const auto& [page, writer] : barrier_.writers) {
            if (writer >= 0 && writer != space_.home_of(page)) {
              space_.set_home(page, writer);
              grant_body.migrations.emplace_back(page, writer);
              home_migrations_.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        const std::vector<std::byte> payload =
            wire::encode_barrier_grant(grant_body);
        for (int dst = 0; dst < n_nodes_; ++dst) {
          net::Message grant;
          grant.src = node;
          grant.dst = dst;
          grant.type = MsgType::kBarrierGrant;
          grant.to_reply_box = true;
          grant.c = barrier_.arrival_req[static_cast<std::size_t>(dst)];
          grant.payload = payload;
          transport_.send(std::move(grant));
        }
        barrier_ = BarrierState{};
      }
      break;
    }
    case MsgType::kSetCv: {
      const int cv_id = static_cast<int>(msg.a);
      CvState& cv = cvs_[node][static_cast<std::size_t>(cv_id / n_nodes_)];
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      cv.pending_notices.insert(cv.pending_notices.end(), notices.begin(),
                                notices.end());
      if (!cv.waiters.empty()) {
        const Waiter waiter = cv.waiters.front();
        cv.waiters.pop_front();
        net::Message grant;
        grant.src = node;
        grant.dst = waiter.node;
        grant.type = MsgType::kCvGrant;
        grant.to_reply_box = true;
        grant.a = static_cast<std::uint64_t>(cv_id);
        grant.c = waiter.req_id;
        grant.payload = wire::encode_pages(cv.pending_notices);
        cv.pending_notices.clear();
        transport_.send(std::move(grant));
      } else {
        ++cv.count;
      }
      break;
    }
    case MsgType::kWaitCv: {
      const int cv_id = static_cast<int>(msg.a);
      CvState& cv = cvs_[node][static_cast<std::size_t>(cv_id / n_nodes_)];
      if (cv.count > 0) {
        --cv.count;
        net::Message grant;
        grant.src = node;
        grant.dst = msg.src;
        grant.type = MsgType::kCvGrant;
        grant.to_reply_box = true;
        grant.a = static_cast<std::uint64_t>(cv_id);
        grant.c = msg.c;
        grant.payload = wire::encode_pages(cv.pending_notices);
        cv.pending_notices.clear();
        transport_.send(std::move(grant));
      } else {
        cv.waiters.push_back(Waiter{msg.src, msg.c});
      }
      break;
    }
    case MsgType::kAllocate: {
      assert(node == 0);
      const auto bytes = static_cast<std::size_t>(msg.a);
      const int home = static_cast<int>(static_cast<std::int64_t>(msg.b));
      net::Message reply;
      reply.src = node;
      reply.dst = msg.src;
      reply.type = MsgType::kAllocateReply;
      reply.to_reply_box = true;
      reply.a = space_.alloc(bytes, home);
      reply.c = msg.c;
      transport_.send(std::move(reply));
      break;
    }
    default:
      throw std::logic_error("DSM service: unexpected message type");
  }
}

void Cluster::service_loop(int node) {
  while (auto msg = transport_.service_box(node).pop()) {
    if (msg->type == net::MsgType::kStop) break;
    handle_message(node, *std::move(msg));
  }
}

void Cluster::run(const std::function<void(Node&)>& program) {
  if (cfg_.load_balancing) {
    throw std::runtime_error(
        "DSM: load_balancing is accepted for jia_config parity but not "
        "implemented in this reproduction (home_migration IS implemented)");
  }
  reset_manager_state();

  std::vector<std::unique_ptr<Node>> nodes;
  nodes.reserve(static_cast<std::size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) nodes.push_back(std::make_unique<Node>(*this, i));

  std::vector<std::thread> service_threads;
  service_threads.reserve(static_cast<std::size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) {
    service_threads.emplace_back([this, i] { service_loop(i); });
  }

  // Failures are collected per node so a multi-node crash reports every
  // culprit, not just whichever thread lost the race to store its exception.
  std::mutex error_mu;
  std::exception_ptr first_error;
  std::vector<std::pair<int, std::string>> failures;
  std::vector<std::thread> app_threads;
  app_threads.reserve(static_cast<std::size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) {
    app_threads.emplace_back([&, i] {
      try {
        program(*nodes[static_cast<std::size_t>(i)]);
      } catch (...) {
        std::string what = "unknown exception";
        try {
          throw;
        } catch (const std::exception& e) {
          what = e.what();
        } catch (...) {
        }
        {
          const std::scoped_lock guard(error_mu);
          if (!first_error) first_error = std::current_exception();
          failures.emplace_back(i, std::move(what));
        }
        // Unblock peers stuck in barriers/cv waits so run() can unwind; the
        // cluster is not reusable after a failed program.
        transport_.shutdown();
      }
    });
  }
  for (auto& t : app_threads) t.join();

  // Let any fault-delayed messages land before stopping the service threads:
  // a straggling fire-and-forget release/signal from this run must not leak
  // into the next run's freshly reset manager state.
  transport_.quiesce();

  for (int i = 0; i < n_nodes_; ++i) {
    net::Message stop;
    stop.src = -1;
    stop.dst = i;
    stop.type = net::MsgType::kStop;
    transport_.send(std::move(stop));
  }
  for (auto& t : service_threads) t.join();

  last_run_stats_.clear();
  for (const auto& n : nodes) last_run_stats_.push_back(n->stats());

  if (!failures.empty()) {
    if (failures.size() == 1) std::rethrow_exception(first_error);
    std::sort(failures.begin(), failures.end());
    std::string combined = "DSM: " + std::to_string(failures.size()) +
                           " node programs failed:";
    for (const auto& [node, what] : failures) {
      combined += "\n  node " + std::to_string(node) + ": " + what;
    }
    throw std::runtime_error(combined);
  }
}

DsmStats Cluster::stats() const {
  DsmStats out;
  out.node = last_run_stats_;
  out.home_migrations = home_migrations_.load(std::memory_order_relaxed);
  out.traffic = transport_.per_node_counters();
  out.faults = transport_.fault_counters();
  return out;
}

}  // namespace gdsm::dsm
