#include "dsm/cluster.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dsm/wire.h"

namespace gdsm::dsm {

Cluster::Cluster(int n_nodes, DsmConfig cfg)
    : n_nodes_(n_nodes),
      cfg_(cfg),
      space_(n_nodes, cfg),
      transport_(n_nodes, cfg.faults) {
  if (n_nodes <= 0) throw std::invalid_argument("Cluster: need >= 1 node");
  reset_manager_state();
}

Cluster::~Cluster() { stop(); }

void Cluster::reset_manager_state() {
  const int per_node_locks = (cfg_.n_locks + n_nodes_ - 1) / n_nodes_;
  const int per_node_cvs = (cfg_.n_cvs + n_nodes_ - 1) / n_nodes_;
  locks_.assign(static_cast<std::size_t>(n_nodes_), {});
  cvs_.assign(static_cast<std::size_t>(n_nodes_), {});
  for (int n = 0; n < n_nodes_; ++n) {
    locks_[n].resize(static_cast<std::size_t>(per_node_locks));
    for (auto& l : locks_[n]) l.last_seen.assign(static_cast<std::size_t>(n_nodes_), 0);
    cvs_[n].resize(static_cast<std::size_t>(per_node_cvs));
  }
  barrier_ = BarrierState{};
}

void Cluster::grant_lock(int manager, int lock_id, const Waiter& to) {
  LockState& l = locks_[manager][static_cast<std::size_t>(lock_id / n_nodes_)];
  l.held = true;
  l.holder = to.node;
  net::Message grant;
  grant.src = manager;
  grant.dst = to.node;
  grant.type = net::MsgType::kAcquireGrant;
  grant.to_reply_box = true;
  grant.a = static_cast<std::uint64_t>(lock_id);
  grant.c = to.req_id;
  // Write notices this acquirer has not yet seen for this lock's scope.
  std::vector<PageId> unseen(
      l.notice_log.begin() + static_cast<std::ptrdiff_t>(l.last_seen[to.node]),
      l.notice_log.end());
  l.last_seen[to.node] = l.notice_log.size();
  grant.payload = wire::encode_pages(unseen);
  transport_.send(std::move(grant));

  // Garbage-collect the notice log: entries every node has seen can never
  // be granted again, so drop the common prefix (bounds memory on
  // long-running lock-heavy programs).
  const std::size_t seen_by_all =
      *std::min_element(l.last_seen.begin(), l.last_seen.end());
  if (seen_by_all > 1024) {
    l.notice_log.erase(l.notice_log.begin(),
                       l.notice_log.begin() +
                           static_cast<std::ptrdiff_t>(seen_by_all));
    for (auto& seen : l.last_seen) seen -= seen_by_all;
  }
}

void Cluster::handle_message(int node, net::Message msg) {
  using net::MsgType;
  switch (msg.type) {
    case MsgType::kGetPage: {
      const PageId p = msg.a;
      assert(space_.home_of(p) == node);
      net::Message reply;
      reply.src = node;
      reply.dst = msg.src;
      reply.type = MsgType::kPageData;
      reply.to_reply_box = true;
      reply.a = p;
      reply.c = msg.c;
      reply.payload.resize(space_.page_bytes());
      {
        const std::scoped_lock guard(space_.page_mutex(p));
        std::memcpy(reply.payload.data(), space_.home_data(p),
                    space_.page_bytes());
      }
      transport_.send(std::move(reply));
      break;
    }
    case MsgType::kDiff: {
      const PageId p = msg.a;
      assert(space_.home_of(p) == node);
      {
        const std::scoped_lock guard(space_.page_mutex(p));
        wire::apply_diff(space_.home_data(p), space_.page_bytes(), msg.payload);
      }
      net::Message ack;
      ack.src = node;
      ack.dst = msg.src;
      ack.type = MsgType::kDiffAck;
      ack.to_reply_box = true;
      ack.a = p;
      ack.c = msg.c;
      transport_.send(std::move(ack));
      break;
    }
    case MsgType::kDiffBatch: {
      // Coalesced release: every framed page's diff is applied under its own
      // page mutex, then one ack covers the whole batch.  Re-applying a
      // retransmitted batch is harmless (diffs are idempotent), and the
      // releaser drops the duplicate ack as stale by id.
      for (const wire::DiffBatchSpan& span :
           wire::decode_diff_batch(msg.payload)) {
        assert(space_.home_of(span.page) == node);
        const std::scoped_lock guard(space_.page_mutex(span.page));
        wire::apply_diff(space_.home_data(span.page), space_.page_bytes(),
                         msg.payload.data() + span.offset, span.len);
      }
      net::Message ack;
      ack.src = node;
      ack.dst = msg.src;
      ack.type = MsgType::kDiffBatchAck;
      ack.to_reply_box = true;
      ack.a = msg.a;  // pages applied, echoed for the releaser's assert
      ack.c = msg.c;
      transport_.send(std::move(ack));
      break;
    }
    case MsgType::kGetPages: {
      // Bulk fetch (demand prefault or read-ahead): one reply carries every
      // requested page's contents, each copied under its page mutex.
      const std::vector<PageId> pages = wire::decode_pages(msg.payload);
      net::Message reply;
      reply.src = node;
      reply.dst = msg.src;
      reply.type = MsgType::kPagesData;
      reply.to_reply_box = true;
      reply.a = pages.size();
      reply.c = msg.c;
      reply.payload.reserve(pages.size() *
                            (sizeof(PageId) + space_.page_bytes()));
      for (PageId p : pages) {
        assert(space_.home_of(p) == node);
        const std::scoped_lock guard(space_.page_mutex(p));
        wire::append_page_data(reply.payload, p, space_.home_data(p),
                               space_.page_bytes());
      }
      transport_.send(std::move(reply));
      break;
    }
    case MsgType::kAcquire: {
      const int lock_id = static_cast<int>(msg.a);
      LockState& l = locks_[node][static_cast<std::size_t>(lock_id / n_nodes_)];
      if (l.held) {
        l.waiting.push_back(Waiter{msg.src, msg.c});
      } else {
        grant_lock(node, lock_id, Waiter{msg.src, msg.c});
      }
      break;
    }
    case MsgType::kRelease: {
      const int lock_id = static_cast<int>(msg.a);
      LockState& l = locks_[node][static_cast<std::size_t>(lock_id / n_nodes_)];
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      l.notice_log.insert(l.notice_log.end(), notices.begin(), notices.end());
      l.held = false;
      l.holder = -1;
      if (!l.waiting.empty()) {
        const Waiter next = l.waiting.front();
        l.waiting.pop_front();
        grant_lock(node, lock_id, next);
      }
      break;
    }
    case MsgType::kBarrier: {
      assert(node == 0);
      if (barrier_.arrival_req.empty()) {
        barrier_.arrival_req.assign(static_cast<std::size_t>(n_nodes_), 0);
      }
      barrier_.arrival_req[static_cast<std::size_t>(msg.src)] = msg.c;
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      barrier_.notices.insert(barrier_.notices.end(), notices.begin(),
                              notices.end());
      for (PageId p : notices) {
        const auto [it, inserted] = barrier_.writers.emplace(p, msg.src);
        if (!inserted && it->second != msg.src) it->second = -1;
      }
      if (++barrier_.arrived == n_nodes_) {
        std::sort(barrier_.notices.begin(), barrier_.notices.end());
        barrier_.notices.erase(
            std::unique(barrier_.notices.begin(), barrier_.notices.end()),
            barrier_.notices.end());

        wire::BarrierGrant grant_body;
        grant_body.notices = barrier_.notices;
        if (cfg_.home_migration) {
          // Home migration: a page written by exactly one node this interval
          // migrates its home to that writer, so its future modifications
          // need no diffs at all.
          for (const auto& [page, writer] : barrier_.writers) {
            if (writer >= 0 && writer != space_.home_of(page)) {
              space_.set_home(page, writer);
              grant_body.migrations.emplace_back(page, writer);
              home_migrations_.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        const std::vector<std::byte> payload =
            wire::encode_barrier_grant(grant_body);
        for (int dst = 0; dst < n_nodes_; ++dst) {
          net::Message grant;
          grant.src = node;
          grant.dst = dst;
          grant.type = MsgType::kBarrierGrant;
          grant.to_reply_box = true;
          grant.c = barrier_.arrival_req[static_cast<std::size_t>(dst)];
          grant.payload = payload;
          transport_.send(std::move(grant));
        }
        barrier_ = BarrierState{};
      }
      break;
    }
    case MsgType::kSetCv: {
      const int cv_id = static_cast<int>(msg.a);
      CvState& cv = cvs_[node][static_cast<std::size_t>(cv_id / n_nodes_)];
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      cv.pending_notices.insert(cv.pending_notices.end(), notices.begin(),
                                notices.end());
      if (!cv.waiters.empty()) {
        const Waiter waiter = cv.waiters.front();
        cv.waiters.pop_front();
        net::Message grant;
        grant.src = node;
        grant.dst = waiter.node;
        grant.type = MsgType::kCvGrant;
        grant.to_reply_box = true;
        grant.a = static_cast<std::uint64_t>(cv_id);
        grant.c = waiter.req_id;
        grant.payload = wire::encode_pages(cv.pending_notices);
        cv.pending_notices.clear();
        transport_.send(std::move(grant));
      } else {
        ++cv.count;
      }
      break;
    }
    case MsgType::kWaitCv: {
      const int cv_id = static_cast<int>(msg.a);
      CvState& cv = cvs_[node][static_cast<std::size_t>(cv_id / n_nodes_)];
      if (cv.count > 0) {
        --cv.count;
        net::Message grant;
        grant.src = node;
        grant.dst = msg.src;
        grant.type = MsgType::kCvGrant;
        grant.to_reply_box = true;
        grant.a = static_cast<std::uint64_t>(cv_id);
        grant.c = msg.c;
        grant.payload = wire::encode_pages(cv.pending_notices);
        cv.pending_notices.clear();
        transport_.send(std::move(grant));
      } else {
        cv.waiters.push_back(Waiter{msg.src, msg.c});
      }
      break;
    }
    case MsgType::kAllocate: {
      assert(node == 0);
      const auto bytes = static_cast<std::size_t>(msg.a);
      const int home = static_cast<int>(static_cast<std::int64_t>(msg.b));
      net::Message reply;
      reply.src = node;
      reply.dst = msg.src;
      reply.type = MsgType::kAllocateReply;
      reply.to_reply_box = true;
      reply.a = space_.alloc(bytes, home);
      reply.c = msg.c;
      transport_.send(std::move(reply));
      break;
    }
    default:
      throw std::logic_error("DSM service: unexpected message type");
  }
}

void Cluster::service_loop(int node) {
  while (auto msg = transport_.service_box(node).pop()) {
    if (msg->type == net::MsgType::kStop) {
      if (msg->a == 0) break;
      // Drain marker (a == 1): everything queued before it has now been
      // fully handled; acknowledge so the finalizer may reset manager state.
      {
        const std::scoped_lock guard(sync_mu_);
        ++sync_acks_;
      }
      sync_cv_.notify_all();
      continue;
    }
    handle_message(node, *std::move(msg));
  }
}

void Cluster::sync_service_threads() {
  {
    const std::scoped_lock guard(sync_mu_);
    sync_acks_ = 0;
  }
  for (int i = 0; i < n_nodes_; ++i) {
    net::Message marker;
    marker.src = -1;  // control: bypasses the fault injector
    marker.dst = i;
    marker.type = net::MsgType::kStop;
    marker.a = 1;
    transport_.send(std::move(marker));
  }
  std::unique_lock<std::mutex> lk(sync_mu_);
  sync_cv_.wait(lk, [&] { return sync_acks_ == n_nodes_; });
}

void Cluster::ensure_started_locked() {
  if (engine_running_) return;
  nodes_.clear();
  nodes_.reserve(static_cast<std::size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) {
    nodes_.push_back(std::make_unique<Node>(*this, i));
  }
  reset_manager_state();
  service_threads_.reserve(static_cast<std::size_t>(n_nodes_));
  engine_threads_.reserve(static_cast<std::size_t>(n_nodes_));
  for (int i = 0; i < n_nodes_; ++i) {
    service_threads_.emplace_back([this, i] { service_loop(i); });
    engine_threads_.emplace_back([this, i] { engine_loop(i); });
  }
  engine_running_ = true;
}

void Cluster::engine_loop(int node) {
  std::unique_lock<std::mutex> lk(jobs_mu_);
  for (;;) {
    jobs_cv_.wait(lk, [&] {
      return (current_ &&
              !current_->started[static_cast<std::size_t>(node)]) ||
             (stopping_ && !current_);
    });
    if (!current_) return;  // stopping, queue drained
    const std::shared_ptr<Job> job = current_;
    job->started[static_cast<std::size_t>(node)] = 1;
    lk.unlock();
    try {
      job->program(*nodes_[static_cast<std::size_t>(node)]);
    } catch (...) {
      // Failures are collected per node so a multi-node crash reports every
      // culprit, not just whichever thread lost the race to store its
      // exception.
      std::string what = "unknown exception";
      try {
        throw;
      } catch (const std::exception& e) {
        what = e.what();
      } catch (...) {
      }
      {
        const std::scoped_lock guard(jobs_mu_);
        if (!job->first_error) job->first_error = std::current_exception();
        job->failures.emplace_back(node, std::move(what));
      }
      // Unblock peers stuck in barriers/cv waits so the job can unwind.
      // Only the reply boxes close: the service threads stay alive, and
      // finalize_job() re-arms the boxes before the next job is admitted.
      transport_.abort_requests();
    }
    lk.lock();
    if (++job->finished == n_nodes_) finalize_job(*job);
  }
}

void Cluster::finalize_job(Job& job) {
  // All engine threads are done with this job; only service threads are
  // still active.  Let fault-delayed messages land, then force every
  // service thread through a drain marker so queued protocol work (stray
  // releases/signals of this job) is applied before the manager reset.
  transport_.quiesce();
  sync_service_threads();
  transport_.quiesce();  // replies emitted during the drain settle too

  const bool failed = !job.failures.empty();
  if (failed) {
    // Unwound requesters saw closed reply boxes; drop any reply that raced
    // the abort (ids are never reused, so a survivor could only ever be
    // dropped as stale) and re-arm the boxes for the next job.
    transport_.reset_reply_boxes();
  }
  // Sweep every cache.  A failed job forfeits even the retained pages
  // (cold restart — the range stays marked and re-warms on next touch);
  // a clean job keeps resident data warm.
  const std::set<PageId> keep = failed ? std::set<PageId>{} : retained_pages_;
  job.stats.clear();
  for (auto& n : nodes_) job.stats.push_back(n->end_of_job(keep));
  reset_manager_state();
  last_run_stats_ = job.stats;
  job.done = true;

  if (queued_.empty()) {
    current_ = nullptr;
  } else {
    current_ = queued_.front();
    queued_.pop_front();
  }
  jobs_cv_.notify_all();
  done_cv_.notify_all();
}

Cluster::Ticket Cluster::submit(std::function<void(Node&)> program) {
  if (cfg_.load_balancing) {
    throw std::runtime_error(
        "DSM: load_balancing is accepted for jia_config parity but not "
        "implemented in this reproduction (home_migration IS implemented)");
  }
  const std::scoped_lock guard(jobs_mu_);
  if (stopping_) throw std::logic_error("Cluster: submit during stop()");
  ensure_started_locked();
  auto job = std::make_shared<Job>();
  job->program = std::move(program);
  job->started.assign(static_cast<std::size_t>(n_nodes_), 0);
  if (current_) {
    queued_.push_back(job);
  } else {
    current_ = job;
  }
  jobs_cv_.notify_all();
  Ticket t;
  t.job_ = std::move(job);
  return t;
}

void Cluster::throw_failures(const Job& job) {
  if (job.failures.size() == 1) std::rethrow_exception(job.first_error);
  auto failures = job.failures;
  std::sort(failures.begin(), failures.end());
  std::string combined = "DSM: " + std::to_string(failures.size()) +
                         " node programs failed:";
  for (const auto& [node, what] : failures) {
    combined += "\n  node " + std::to_string(node) + ": " + what;
  }
  throw std::runtime_error(combined);
}

DsmStats Cluster::await(const Ticket& ticket) {
  if (!ticket.job_) throw std::logic_error("Cluster: await on empty ticket");
  std::unique_lock<std::mutex> lk(jobs_mu_);
  done_cv_.wait(lk, [&] { return ticket.job_->done; });
  const Job& job = *ticket.job_;
  if (!job.failures.empty()) throw_failures(job);
  DsmStats out;
  out.node = job.stats;
  out.home_migrations = home_migrations_.load(std::memory_order_relaxed);
  out.traffic = transport_.per_node_counters();
  out.faults = transport_.fault_counters();
  return out;
}

void Cluster::run(const std::function<void(Node&)>& program) {
  await(submit(program));
}

void Cluster::retain_range(GlobalAddr addr, std::size_t bytes) {
  if (bytes == 0) return;
  const std::scoped_lock guard(jobs_mu_);
  const PageId first = space_.page_of(addr);
  const PageId last = space_.page_of(addr + bytes - 1);
  for (PageId p = first; p <= last; ++p) retained_pages_.insert(p);
}

void Cluster::clear_retained() {
  const std::scoped_lock guard(jobs_mu_);
  retained_pages_.clear();
}

void Cluster::host_write(GlobalAddr addr, const void* data, std::size_t bytes) {
  const auto* in = static_cast<const std::byte*>(data);
  const std::size_t page_bytes = space_.page_bytes();
  while (bytes > 0) {
    const PageId p = space_.page_of(addr);
    const std::size_t off = space_.offset_in_page(addr);
    const std::size_t chunk = std::min(bytes, page_bytes - off);
    {
      const std::scoped_lock guard(space_.page_mutex(p));
      std::memcpy(space_.home_data(p) + off, in, chunk);
    }
    addr += chunk;
    in += chunk;
    bytes -= chunk;
  }
}

void Cluster::stop() {
  std::unique_lock<std::mutex> lk(jobs_mu_);
  if (!engine_running_) return;
  stopping_ = true;
  jobs_cv_.notify_all();
  // finalize_job() keeps promoting queued jobs while we wait, so the queue
  // drains before the engine threads see (stopping_ && !current_) and exit.
  done_cv_.wait(lk, [&] { return current_ == nullptr; });
  std::vector<std::thread> engines = std::move(engine_threads_);
  std::vector<std::thread> services = std::move(service_threads_);
  engine_threads_.clear();
  service_threads_.clear();
  lk.unlock();
  for (auto& t : engines) t.join();
  for (int i = 0; i < n_nodes_; ++i) {
    net::Message halt;
    halt.src = -1;
    halt.dst = i;
    halt.type = net::MsgType::kStop;
    halt.a = 0;
    transport_.send(std::move(halt));
  }
  for (auto& t : services) t.join();
  lk.lock();
  nodes_.clear();
  stopping_ = false;
  engine_running_ = false;
}

DsmStats Cluster::stats() const {
  const std::scoped_lock guard(jobs_mu_);
  DsmStats out;
  out.node = last_run_stats_;
  out.home_migrations = home_migrations_.load(std::memory_order_relaxed);
  out.traffic = transport_.per_node_counters();
  out.faults = transport_.fault_counters();
  return out;
}

}  // namespace gdsm::dsm
