#include "dsm/page_cache.h"

#include <cassert>
#include <utility>

namespace gdsm::dsm {

Frame* PageCache::lookup(PageId p) {
  const auto it = map_.find(p);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return &it->second.frame;
}

Frame* PageCache::insert(PageId p, std::vector<std::byte> data, Evicted* evicted) {
  assert(map_.find(p) == map_.end());
  if (evicted != nullptr) evicted->valid = false;
  if (map_.size() >= capacity_) {
    const PageId victim = lru_.back();
    lru_.pop_back();
    auto vit = map_.find(victim);
    assert(vit != map_.end());
    if (evicted != nullptr) {
      evicted->page = victim;
      evicted->frame = std::move(vit->second.frame);
      evicted->valid = true;
    }
    map_.erase(vit);
  }
  lru_.push_front(p);
  Entry entry;
  entry.frame.data = std::move(data);
  entry.lru_it = lru_.begin();
  auto [it, inserted] = map_.emplace(p, std::move(entry));
  assert(inserted);
  return &it->second.frame;
}

bool PageCache::erase(PageId p) {
  const auto it = map_.find(p);
  if (it == map_.end()) return false;
  lru_.erase(it->second.lru_it);
  map_.erase(it);
  return true;
}

std::size_t PageCache::retain_only(const std::set<PageId>& keep) {
  std::vector<PageId> drop;
  for (const auto& [p, entry] : map_) {
    if (entry.frame.dirty || keep.count(p) == 0) drop.push_back(p);
  }
  for (PageId p : drop) erase(p);
  return drop.size();
}

std::vector<PageId> PageCache::dirty_pages() const {
  std::vector<PageId> out;
  for (const auto& [p, entry] : map_) {
    if (entry.frame.dirty) out.push_back(p);
  }
  return out;
}

}  // namespace gdsm::dsm
