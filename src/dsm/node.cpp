#include "dsm/node.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "dsm/cluster.h"
#include "dsm/wire.h"

namespace gdsm::dsm {

namespace wire {

std::vector<std::byte> encode_pages(const std::vector<PageId>& pages) {
  std::vector<std::byte> out;
  out.reserve(pages.size() * sizeof(PageId));
  for (PageId p : pages) net::append_pod(out, p);
  return out;
}

std::vector<PageId> decode_pages(const std::vector<std::byte>& payload) {
  std::vector<PageId> out;
  out.reserve(payload.size() / sizeof(PageId));
  for (std::size_t off = 0; off + sizeof(PageId) <= payload.size();
       off += sizeof(PageId)) {
    out.push_back(net::read_pod<PageId>(payload, off));
  }
  return out;
}

std::vector<std::byte> encode_barrier_grant(const BarrierGrant& grant) {
  std::vector<std::byte> out;
  net::append_pod(out, static_cast<std::uint64_t>(grant.notices.size()));
  for (PageId p : grant.notices) net::append_pod(out, p);
  net::append_pod(out, static_cast<std::uint64_t>(grant.migrations.size()));
  for (const auto& [p, home] : grant.migrations) {
    net::append_pod(out, p);
    net::append_pod(out, static_cast<std::uint64_t>(home));
  }
  return out;
}

BarrierGrant decode_barrier_grant(const std::vector<std::byte>& payload) {
  BarrierGrant grant;
  std::size_t off = 0;
  const auto n_notices = net::read_pod<std::uint64_t>(payload, off);
  off += 8;
  grant.notices.reserve(n_notices);
  for (std::uint64_t k = 0; k < n_notices; ++k, off += 8) {
    grant.notices.push_back(net::read_pod<PageId>(payload, off));
  }
  const auto n_migr = net::read_pod<std::uint64_t>(payload, off);
  off += 8;
  for (std::uint64_t k = 0; k < n_migr; ++k, off += 16) {
    grant.migrations.emplace_back(
        net::read_pod<PageId>(payload, off),
        static_cast<int>(net::read_pod<std::uint64_t>(payload, off + 8)));
  }
  return grant;
}

std::vector<std::byte> make_diff(const std::vector<std::byte>& twin,
                                 const std::vector<std::byte>& data) {
  assert(twin.size() == data.size());
  std::vector<std::byte> out;
  std::size_t i = 0;
  const std::size_t n = data.size();
  while (i < n) {
    if (twin[i] == data[i]) {
      ++i;
      continue;
    }
    // Start of a modified run; extend while differences are close together.
    std::size_t end = i + 1;
    std::size_t same = 0;
    for (std::size_t k = end; k < n && same < 8; ++k) {
      if (twin[k] == data[k]) {
        ++same;
      } else {
        end = k + 1;
        same = 0;
      }
    }
    net::append_pod(out, static_cast<std::uint32_t>(i));
    net::append_pod(out, static_cast<std::uint32_t>(end - i));
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(i),
               data.begin() + static_cast<std::ptrdiff_t>(end));
    i = end;
  }
  return out;
}

void apply_diff(std::byte* dst, std::size_t dst_size,
                const std::vector<std::byte>& payload) {
  std::size_t off = 0;
  while (off + 2 * sizeof(std::uint32_t) <= payload.size()) {
    const auto start = net::read_pod<std::uint32_t>(payload, off);
    const auto len = net::read_pod<std::uint32_t>(payload, off + 4);
    off += 8;
    if (start + len > dst_size || off + len > payload.size()) {
      throw std::runtime_error("apply_diff: malformed diff record");
    }
    std::memcpy(dst + start, payload.data() + off, len);
    off += len;
  }
}

}  // namespace wire

Node::Node(Cluster& cluster, int id)
    : cluster_(cluster), id_(id), cache_(cluster.config().cache_pages) {}

int Node::nodes() const noexcept { return cluster_.nodes(); }

net::Message Node::request(net::Message msg) {
  msg.src = id_;
  msg.c = cluster_.request_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = msg.c;
  const RetryPolicy& retry = cluster_.config().retry;
  // Only idempotent requests may be retransmitted: fetching a page twice or
  // applying the same diff twice is harmless, but a duplicated acquire /
  // barrier / cv / alloc would corrupt manager state.
  const bool retryable =
      retry.timeout_us > 0 && (msg.type == net::MsgType::kGetPage ||
                               msg.type == net::MsgType::kDiff);
  net::Message resend;  // copy kept only while retransmission is possible
  if (retryable) resend = msg;
  cluster_.transport_.send(std::move(msg));

  auto& box = cluster_.transport_.reply_box(id_);
  if (retry.timeout_us == 0) {
    for (;;) {
      auto reply = box.pop();
      if (!reply) {
        throw std::runtime_error("DSM node: reply box closed mid-request");
      }
      if (reply->c != id) {  // leftover reply of a superseded attempt
        ++stats_.stale_replies;
        continue;
      }
      return *std::move(reply);
    }
  }
  std::uint32_t attempts = 0;
  for (;;) {
    const auto wait = std::chrono::microseconds(
        retry.timeout_us +
        static_cast<std::uint64_t>(attempts) * retry.backoff_us);
    bool closed = false;
    auto reply = box.pop_for(wait, &closed);
    if (reply) {
      if (reply->c != id) {
        ++stats_.stale_replies;
        continue;
      }
      return *std::move(reply);
    }
    if (closed) {
      throw std::runtime_error("DSM node: reply box closed mid-request");
    }
    ++stats_.request_timeouts;
    if (retryable && attempts < retry.max_retries) {
      ++attempts;
      ++stats_.request_retries;
      net::Message again = resend;  // same request id: replies stay matchable
      cluster_.transport_.send(std::move(again));
    }
    // Non-idempotent requests (and exhausted retries) simply keep waiting;
    // the transport is reliable underneath, so the reply will come.
  }
}

Frame* Node::ensure_cached(PageId p) {
  if (Frame* f = cache_.lookup(p)) {
    ++stats_.cache_hits;
    return f;
  }
  ++stats_.read_faults;
  net::Message msg;
  msg.dst = cluster_.space_.home_of(p);
  msg.type = net::MsgType::kGetPage;
  msg.a = p;
  net::Message reply = request(std::move(msg));
  PageCache::Evicted evicted;
  Frame* f = cache_.insert(p, std::move(reply.payload), &evicted);
  if (evicted.valid) {
    ++stats_.evictions;
    if (evicted.frame.dirty) {
      flush_frame_diff(evicted.page, evicted.frame);
      pending_notices_.push_back(evicted.page);
    }
  }
  return f;
}

Frame* Node::ensure_writable_frame(PageId p) {
  Frame* f = ensure_cached(p);
  if (!f->dirty) {
    f->twin = f->data;  // create the twin for the multiple-writer diff
    f->dirty = true;
    ++stats_.write_faults;
  }
  return f;
}

void Node::read_bytes(GlobalAddr a, std::byte* out, std::size_t n) {
  GlobalSpace& space = cluster_.space_;
  const std::size_t page_bytes = space.page_bytes();
  while (n > 0) {
    const PageId p = space.page_of(a);
    const std::size_t off = space.offset_in_page(a);
    const std::size_t chunk = std::min(n, page_bytes - off);
    if (space.home_of(p) == id_) {
      const std::scoped_lock guard(space.page_mutex(p));
      std::memcpy(out, space.home_data(p) + off, chunk);
    } else {
      Frame* f = ensure_cached(p);
      std::memcpy(out, f->data.data() + off, chunk);
    }
    a += chunk;
    out += chunk;
    n -= chunk;
  }
}

void Node::write_bytes(GlobalAddr a, const std::byte* in, std::size_t n) {
  GlobalSpace& space = cluster_.space_;
  const std::size_t page_bytes = space.page_bytes();
  while (n > 0) {
    const PageId p = space.page_of(a);
    const std::size_t off = space.offset_in_page(a);
    const std::size_t chunk = std::min(n, page_bytes - off);
    if (space.home_of(p) == id_) {
      // The home copy is canonical: write through under the page mutex and
      // remember the page for the next write-notice propagation.
      {
        const std::scoped_lock guard(space.page_mutex(p));
        std::memcpy(space.home_data(p) + off, in, chunk);
      }
      home_written_.insert(p);
    } else {
      Frame* f = ensure_writable_frame(p);
      std::memcpy(f->data.data() + off, in, chunk);
    }
    a += chunk;
    in += chunk;
    n -= chunk;
  }
}

void Node::flush_frame_diff(PageId p, Frame& frame) {
  std::vector<std::byte> diff = wire::make_diff(frame.twin, frame.data);
  ++stats_.diffs_sent;
  stats_.diff_bytes += diff.size();
  net::Message msg;
  msg.dst = cluster_.space_.home_of(p);
  msg.type = net::MsgType::kDiff;
  msg.a = p;
  msg.payload = std::move(diff);
  net::Message ack = request(std::move(msg));
  assert(ack.type == net::MsgType::kDiffAck);
  (void)ack;
  frame.twin.clear();
  frame.twin.shrink_to_fit();
  frame.dirty = false;
}

void Node::flush_all_diffs() {
  for (PageId p : cache_.dirty_pages()) {
    Frame* f = cache_.lookup(p);
    assert(f != nullptr && f->dirty);
    flush_frame_diff(p, *f);
    pending_notices_.push_back(p);
  }
}

std::vector<std::byte> Node::take_notices() {
  std::vector<PageId> notices = std::move(pending_notices_);
  pending_notices_.clear();
  notices.insert(notices.end(), home_written_.begin(), home_written_.end());
  home_written_.clear();
  std::sort(notices.begin(), notices.end());
  notices.erase(std::unique(notices.begin(), notices.end()), notices.end());
  return wire::encode_pages(notices);
}

void Node::apply_notices(const std::vector<std::byte>& payload) {
  apply_notices(wire::decode_pages(payload));
}

void Node::apply_notices(const std::vector<PageId>& pages) {
  for (PageId p : pages) {
    if (cluster_.space_.home_of(p) == id_) continue;  // home copy stays valid
    Frame* f = cache_.lookup(p);
    if (f == nullptr) continue;
    if (f->dirty) {
      // Concurrent-writer case: merge our modifications home before
      // dropping the stale copy, so no write is lost.
      flush_frame_diff(p, *f);
      pending_notices_.push_back(p);
    }
    cache_.erase(p);
    ++stats_.invalidations;
  }
}

void Node::lock(int lock_id) {
  ++stats_.lock_acquires;
  net::Message msg;
  msg.dst = lock_id % nodes();
  msg.type = net::MsgType::kAcquire;
  msg.a = static_cast<std::uint64_t>(lock_id);
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kAcquireGrant);
  apply_notices(grant.payload);
}

void Node::unlock(int lock_id) {
  ++stats_.lock_releases;
  flush_all_diffs();
  net::Message msg;
  msg.src = id_;
  msg.dst = lock_id % nodes();
  msg.type = net::MsgType::kRelease;
  msg.a = static_cast<std::uint64_t>(lock_id);
  msg.payload = take_notices();
  cluster_.transport_.send(std::move(msg));  // release needs no reply
}

void Node::barrier() {
  ++stats_.barriers;
  flush_all_diffs();
  net::Message msg;
  msg.dst = 0;  // barrier owner
  msg.type = net::MsgType::kBarrier;
  msg.payload = take_notices();
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kBarrierGrant);
  const wire::BarrierGrant decoded = wire::decode_barrier_grant(grant.payload);
  apply_notices(decoded.notices);
  for (const auto& [page, new_home] : decoded.migrations) {
    // A page that migrated HERE is now served from the home copy directly;
    // drop any stale cached frame so reads take the home path.
    if (new_home == id_) cache_.erase(page);
  }
}

void Node::setcv(int cv_id) {
  ++stats_.cv_signals;
  // Release semantics: make this node's writes visible to whoever wakes.
  flush_all_diffs();
  net::Message msg;
  msg.src = id_;
  msg.dst = cv_id % nodes();
  msg.type = net::MsgType::kSetCv;
  msg.a = static_cast<std::uint64_t>(cv_id);
  msg.payload = take_notices();
  cluster_.transport_.send(std::move(msg));  // signal needs no reply
}

void Node::waitcv(int cv_id) {
  ++stats_.cv_waits;
  net::Message msg;
  msg.dst = cv_id % nodes();
  msg.type = net::MsgType::kWaitCv;
  msg.a = static_cast<std::uint64_t>(cv_id);
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kCvGrant);
  apply_notices(grant.payload);
}

NodeStats Node::end_of_job(const std::set<PageId>& retained) {
  // Dirty frames of a finished (or failed) program must never survive into
  // the next job: their write notices died with the manager state.  Clean
  // frames of retained pages are immutable service data and stay warm.
  cache_.retain_only(retained);
  home_written_.clear();
  pending_notices_.clear();
  NodeStats out = stats_;
  stats_ = NodeStats{};
  return out;
}

GlobalAddr Node::alloc(std::size_t bytes, int home) {
  net::Message msg;
  msg.dst = 0;
  msg.type = net::MsgType::kAllocate;
  msg.a = bytes;
  msg.b = static_cast<std::uint64_t>(static_cast<std::int64_t>(home));
  net::Message reply = request(std::move(msg));
  assert(reply.type == net::MsgType::kAllocateReply);
  return reply.a;
}

}  // namespace gdsm::dsm
