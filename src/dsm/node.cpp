#include "dsm/node.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <mutex>
#include <stdexcept>

#include "dsm/cluster.h"
#include "dsm/wire.h"

namespace gdsm::dsm {

namespace {

/// Payload bytes of a diff-batch frame header (u64 page + u32 record_bytes).
constexpr std::size_t kBatchFrameHeader = sizeof(PageId) + sizeof(std::uint32_t);

}  // namespace

ThreadNode::ThreadNode(Cluster& cluster, int id)
    : Node(id), cluster_(cluster), cache_(cluster.config().cache_pages) {}

int ThreadNode::nodes() const noexcept { return cluster_.nodes(); }

net::Message ThreadNode::request(net::Message msg) {
  msg.src = id_;
  msg.c = cluster_.request_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::uint64_t id = msg.c;
  const RetryPolicy& retry = cluster_.config().retry;
  // Only idempotent requests may be retransmitted: fetching a page twice or
  // applying the same diff twice is harmless, but a duplicated acquire /
  // barrier / cv / alloc would corrupt manager state.
  const bool retryable =
      retry.timeout_us > 0 && (msg.type == net::MsgType::kGetPage ||
                               msg.type == net::MsgType::kDiff ||
                               msg.type == net::MsgType::kGetPages ||
                               msg.type == net::MsgType::kDiffBatch);
  net::Message resend;  // copy kept only while retransmission is possible
  if (retryable) resend = msg;
  cluster_.transport_.send(std::move(msg));

  auto& box = cluster_.transport_.reply_box(id_);
  if (retry.timeout_us == 0) {
    for (;;) {
      auto reply = box.pop();
      if (!reply) {
        throw std::runtime_error("DSM node: reply box closed mid-request");
      }
      if (reply->c != id) {
        // A read-ahead reply sharing the box is kept for the next safe
        // point; anything else is a leftover of a superseded attempt.
        if (prefetch_inflight_.count(reply->c) != 0) {
          deferred_prefetch_.push_back(*std::move(reply));
        } else {
          ++stats_.stale_replies;
        }
        continue;
      }
      return *std::move(reply);
    }
  }
  std::uint32_t attempts = 0;
  for (;;) {
    const auto wait = std::chrono::microseconds(
        retry.timeout_us +
        static_cast<std::uint64_t>(attempts) * retry.backoff_us);
    bool closed = false;
    auto reply = box.pop_for(wait, &closed);
    if (reply) {
      if (reply->c != id) {
        if (prefetch_inflight_.count(reply->c) != 0) {
          deferred_prefetch_.push_back(*std::move(reply));
        } else {
          ++stats_.stale_replies;
        }
        continue;
      }
      return *std::move(reply);
    }
    if (closed) {
      throw std::runtime_error("DSM node: reply box closed mid-request");
    }
    ++stats_.request_timeouts;
    if (retryable && attempts < retry.max_retries) {
      ++attempts;
      ++stats_.request_retries;
      net::Message again = resend;  // same request id: replies stay matchable
      cluster_.transport_.send(std::move(again));
    }
    // Non-idempotent requests (and exhausted retries) simply keep waiting;
    // the transport is reliable underneath, so the reply will come.
  }
}

void ThreadNode::request_all(std::vector<net::Message> msgs,
                       void (ThreadNode::*on_reply)(net::Message)) {
  const CommConfig& comm = cluster_.config().comm;
  const RetryPolicy& retry = cluster_.config().retry;
  const std::size_t window = comm.max_outstanding > 0 ? comm.max_outstanding : 1;

  struct Outstanding {
    net::Message resend;
    std::uint32_t attempts = 0;
  };
  std::map<std::uint64_t, Outstanding> outstanding;
  std::size_t next = 0;
  auto send_next = [&] {
    net::Message msg = std::move(msgs[next++]);
    msg.src = id_;
    msg.c = cluster_.request_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
    Outstanding o;
    if (retry.timeout_us > 0) o.resend = msg;  // all request_all types are
                                               // idempotent by construction
    outstanding.emplace(msg.c, std::move(o));
    cluster_.transport_.send(std::move(msg));
  };
  while (next < msgs.size() && outstanding.size() < window) send_next();

  auto& box = cluster_.transport_.reply_box(id_);
  while (!outstanding.empty()) {
    std::optional<net::Message> reply;
    if (retry.timeout_us == 0) {
      reply = box.pop();
      if (!reply) {
        throw std::runtime_error("DSM node: reply box closed mid-request");
      }
    } else {
      bool closed = false;
      reply = box.pop_for(std::chrono::microseconds(retry.timeout_us), &closed);
      if (!reply) {
        if (closed) {
          throw std::runtime_error("DSM node: reply box closed mid-request");
        }
        ++stats_.request_timeouts;
        for (auto& [id, o] : outstanding) {
          if (o.attempts < retry.max_retries) {
            ++o.attempts;
            ++stats_.request_retries;
            net::Message again = o.resend;
            cluster_.transport_.send(std::move(again));
          }
        }
        continue;
      }
    }
    const auto it = outstanding.find(reply->c);
    if (it == outstanding.end()) {
      if (prefetch_inflight_.count(reply->c) != 0) {
        deferred_prefetch_.push_back(*std::move(reply));
      } else {
        ++stats_.stale_replies;
      }
      continue;
    }
    outstanding.erase(it);
    (this->*on_reply)(*std::move(reply));
    if (next < msgs.size()) send_next();
  }
}

void ThreadNode::on_batch_ack(net::Message reply) {
  assert(reply.type == net::MsgType::kDiffBatchAck);
  (void)reply;
}

void ThreadNode::on_pages_data(net::Message reply) {
  assert(reply.type == net::MsgType::kPagesData);
  const std::size_t page_bytes = cluster_.space_.page_bytes();
  for (const wire::PageDataSpan& span :
       wire::decode_pages_data(reply.payload, page_bytes)) {
    if (cache_.contains(span.page)) continue;  // e.g. duplicate retransmit
    std::vector<std::byte> data(
        reply.payload.begin() + static_cast<std::ptrdiff_t>(span.offset),
        reply.payload.begin() +
            static_cast<std::ptrdiff_t>(span.offset + page_bytes));
    insert_fetched(span.page, std::move(data), /*prefetched=*/false);
  }
}

Frame* ThreadNode::insert_fetched(PageId p, std::vector<std::byte> data,
                            bool prefetched) {
  PageCache::Evicted evicted;
  Frame* f = cache_.insert(p, std::move(data), &evicted);
  f->prefetched = prefetched;
  if (evicted.valid) {
    ++stats_.evictions;
    if (evicted.frame.prefetched) ++stats_.prefetch_wasted;
    if (evicted.frame.dirty) {
      // The victim's diff needs a blocking round-trip, which must not run
      // while this insert happens inside request_all()/absorb paths with
      // other replies pending on the shared box — flush at the next safe
      // point instead.
      deferred_dirty_.emplace_back(evicted.page, std::move(evicted.frame));
    }
  }
  return f;
}

void ThreadNode::flush_deferred_dirty() {
  while (!deferred_dirty_.empty()) {
    auto [page, frame] = std::move(deferred_dirty_.back());
    deferred_dirty_.pop_back();
    if (flush_frame_diff(page, frame)) pending_notices_.push_back(page);
  }
}

// ---------------------------------------------------------------------------
// Sequential read-ahead.

void ThreadNode::maybe_prefetch(PageId p) {
  const CommConfig& comm = cluster_.config().comm;
  GlobalSpace& space = cluster_.space_;
  // Leave headroom: read-ahead must never thrash a small cache into
  // evicting the pages the application is actually using.
  if (cache_.size() + prefetch_pending_.size() + comm.prefetch_pages + 1 >
      cache_.capacity()) {
    return;
  }
  std::map<int, std::vector<PageId>> by_home;
  for (std::uint32_t k = 1; k <= comm.prefetch_pages; ++k) {
    const PageId q = p + k;
    if (!space.valid_page(q)) break;
    if (space.home_of(q) == id_) continue;
    if (cache_.contains(q)) continue;
    if (prefetch_pending_.count(q) != 0) continue;
    by_home[space.home_of(q)].push_back(q);
  }
  for (auto& [home, pages] : by_home) {
    net::Message msg;
    msg.src = id_;
    msg.dst = home;
    msg.type = net::MsgType::kGetPages;
    msg.a = pages.size();
    msg.c = cluster_.request_ids_.fetch_add(1, std::memory_order_relaxed) + 1;
    msg.payload = wire::encode_pages(pages);
    stats_.prefetch_issued += pages.size();
    for (PageId q : pages) prefetch_pending_.insert(q);
    prefetch_inflight_.emplace(msg.c, std::move(pages));
    cluster_.transport_.send(std::move(msg));  // async: reply absorbed later
  }
}

void ThreadNode::absorb_prefetch(net::Message reply) {
  const auto it = prefetch_inflight_.find(reply.c);
  assert(it != prefetch_inflight_.end());
  const std::vector<PageId> wanted = std::move(it->second);
  prefetch_inflight_.erase(it);
  const std::size_t page_bytes = cluster_.space_.page_bytes();
  for (const wire::PageDataSpan& span :
       wire::decode_pages_data(reply.payload, page_bytes)) {
    // Pages cancelled by a write notice between issue and arrival are
    // dropped: their contents predate the release we just synchronized with.
    if (std::find(wanted.begin(), wanted.end(), span.page) == wanted.end()) {
      continue;
    }
    prefetch_pending_.erase(span.page);
    if (cache_.contains(span.page)) continue;
    std::vector<std::byte> data(
        reply.payload.begin() + static_cast<std::ptrdiff_t>(span.offset),
        reply.payload.begin() +
            static_cast<std::ptrdiff_t>(span.offset + page_bytes));
    insert_fetched(span.page, std::move(data), /*prefetched=*/true);
  }
}

void ThreadNode::absorb_prefetch_replies() {
  if (!deferred_prefetch_.empty()) {
    std::vector<net::Message> deferred = std::move(deferred_prefetch_);
    deferred_prefetch_.clear();
    for (auto& msg : deferred) absorb_prefetch(std::move(msg));
  }
  if (!prefetch_inflight_.empty()) {
    auto& box = cluster_.transport_.reply_box(id_);
    while (auto msg = box.try_pop()) {
      if (prefetch_inflight_.count(msg->c) != 0) {
        absorb_prefetch(*std::move(msg));
      } else {
        ++stats_.stale_replies;
      }
    }
  }
  flush_deferred_dirty();
}

Frame* ThreadNode::await_prefetch(PageId p) {
  if (prefetch_pending_.count(p) == 0) return nullptr;
  auto& box = cluster_.transport_.reply_box(id_);
  while (prefetch_pending_.count(p) != 0) {
    auto msg = box.pop();
    if (!msg) {
      throw std::runtime_error("DSM node: reply box closed mid-request");
    }
    if (prefetch_inflight_.count(msg->c) != 0) {
      absorb_prefetch(*std::move(msg));
    } else {
      ++stats_.stale_replies;
    }
  }
  flush_deferred_dirty();
  // Usually a hit; may be null when a tiny cache evicted `p` again while
  // later pages of the same reply were inserted — the caller then falls
  // through to a plain demand fault.
  return cache_.lookup(p);
}

void ThreadNode::cancel_prefetch(PageId p) {
  if (prefetch_pending_.erase(p) == 0) return;
  ++stats_.prefetch_wasted;
  for (auto& [id, pages] : prefetch_inflight_) {
    const auto it = std::find(pages.begin(), pages.end(), p);
    if (it != pages.end()) {
      pages.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Access paths.

Frame* ThreadNode::ensure_cached(PageId p) {
  if (!prefetch_inflight_.empty() || !deferred_prefetch_.empty()) {
    absorb_prefetch_replies();
  }
  Frame* f = cache_.lookup(p);
  if (f == nullptr && prefetch_pending_.count(p) != 0) f = await_prefetch(p);
  if (f != nullptr) {
    ++stats_.cache_hits;
    if (f->prefetched) {
      f->prefetched = false;
      ++stats_.prefetch_hits;
    }
  } else {
    ++stats_.read_faults;
    net::Message msg;
    msg.dst = cluster_.space_.home_of(p);
    msg.type = net::MsgType::kGetPage;
    msg.a = p;
    net::Message reply = request(std::move(msg));
    f = insert_fetched(p, std::move(reply.payload), /*prefetched=*/false);
    flush_deferred_dirty();
    f = cache_.lookup(p);  // re-resolve: the deferred flush may touch the map
    assert(f != nullptr);
  }
  // Sequential-scan detector: a touch extending the previous one by exactly
  // one page keeps the read-ahead window sliding in front of the scan.
  const bool sequential = p == last_faulted_page_ + 1;
  last_faulted_page_ = p;
  if (sequential && cluster_.config().comm.prefetch_pages > 0) {
    maybe_prefetch(p);
  }
  return f;
}

Frame* ThreadNode::ensure_writable_frame(PageId p) {
  Frame* f = ensure_cached(p);
  if (!f->dirty) {
    f->twin = f->data;  // create the twin for the multiple-writer diff
    f->dirty = true;
    ++stats_.write_faults;
  }
  return f;
}

void ThreadNode::prefault_range(GlobalAddr a, std::size_t n) {
  GlobalSpace& space = cluster_.space_;
  const CommConfig& comm = cluster_.config().comm;
  if (!prefetch_inflight_.empty() || !deferred_prefetch_.empty()) {
    absorb_prefetch_replies();
  }
  const PageId first = space.page_of(a);
  const PageId last = space.page_of(a + n - 1);
  // Never bulk-fetch more than half the cache in one go: the tail of a huge
  // span would evict its own head before the copy loop reads it.
  std::size_t budget = cache_.capacity() / 2;
  std::map<int, std::vector<PageId>> by_home;
  for (PageId p = first; p <= last && budget > 0; ++p) {
    if (space.home_of(p) == id_) continue;
    if (cache_.contains(p)) continue;
    if (prefetch_pending_.count(p) != 0) continue;  // awaited by the main loop
    by_home[space.home_of(p)].push_back(p);
    --budget;
  }
  std::vector<net::Message> msgs;
  for (auto& [home, pages] : by_home) {
    if (pages.size() < 2) continue;  // one page = one round-trip either way
    const std::size_t max_chunk =
        comm.max_batch_pages > 0 ? comm.max_batch_pages : pages.size();
    for (std::size_t i = 0; i < pages.size(); i += max_chunk) {
      const std::size_t count = std::min(max_chunk, pages.size() - i);
      const std::vector<PageId> chunk(
          pages.begin() + static_cast<std::ptrdiff_t>(i),
          pages.begin() + static_cast<std::ptrdiff_t>(i + count));
      net::Message msg;
      msg.dst = home;
      msg.type = net::MsgType::kGetPages;
      msg.a = count;
      msg.payload = wire::encode_pages(chunk);
      msgs.push_back(std::move(msg));
      // Per-page fetch accounting is kept (read_faults counts remote
      // fetches regardless of how they were transported).
      stats_.read_faults += count;
      ++stats_.bulk_fetches;
      stats_.bulk_pages_fetched += count;
    }
  }
  if (!msgs.empty()) {
    request_all(std::move(msgs), &ThreadNode::on_pages_data);
    flush_deferred_dirty();
  }
}

void ThreadNode::read_bytes(GlobalAddr a, std::byte* out, std::size_t n) {
  if (n == 0) return;
  GlobalSpace& space = cluster_.space_;
  const std::size_t page_bytes = space.page_bytes();
  if (cluster_.config().comm.bulk_fetch &&
      space.page_of(a) != space.page_of(a + n - 1)) {
    prefault_range(a, n);
  }
  while (n > 0) {
    const PageId p = space.page_of(a);
    const std::size_t off = space.offset_in_page(a);
    const std::size_t chunk = std::min(n, page_bytes - off);
    if (space.home_of(p) == id_) {
      const std::scoped_lock guard(space.page_mutex(p));
      std::memcpy(out, space.home_data(p) + off, chunk);
    } else {
      Frame* f = ensure_cached(p);
      std::memcpy(out, f->data.data() + off, chunk);
    }
    a += chunk;
    out += chunk;
    n -= chunk;
  }
}

void ThreadNode::write_bytes(GlobalAddr a, const std::byte* in, std::size_t n) {
  GlobalSpace& space = cluster_.space_;
  const std::size_t page_bytes = space.page_bytes();
  while (n > 0) {
    const PageId p = space.page_of(a);
    const std::size_t off = space.offset_in_page(a);
    const std::size_t chunk = std::min(n, page_bytes - off);
    if (space.home_of(p) == id_) {
      // The home copy is canonical: write through under the page mutex and
      // remember the page for the next write-notice propagation.
      {
        const std::scoped_lock guard(space.page_mutex(p));
        std::memcpy(space.home_data(p) + off, in, chunk);
      }
      home_written_.insert(p);
    } else {
      Frame* f = ensure_writable_frame(p);
      std::memcpy(f->data.data() + off, in, chunk);
    }
    a += chunk;
    in += chunk;
    n -= chunk;
  }
}

// ---------------------------------------------------------------------------
// Release-time diff propagation.

bool ThreadNode::flush_frame_diff(PageId p, Frame& frame) {
  diff_scratch_.clear();
  wire::append_diff(diff_scratch_, frame.twin, frame.data);
  frame.twin.clear();
  frame.twin.shrink_to_fit();
  frame.dirty = false;
  if (diff_scratch_.empty()) {
    // The page was rewritten with identical bytes: the home copy is already
    // current, so the whole round-trip (and the write notice) is dropped.
    ++stats_.empty_diffs_suppressed;
    return false;
  }
  ++stats_.diffs_sent;
  stats_.diff_bytes += diff_scratch_.size();
  net::Message msg;
  msg.dst = cluster_.space_.home_of(p);
  msg.type = net::MsgType::kDiff;
  msg.a = p;
  msg.payload.assign(diff_scratch_.begin(), diff_scratch_.end());
  net::Message ack = request(std::move(msg));
  assert(ack.type == net::MsgType::kDiffAck);
  (void)ack;
  return true;
}

void ThreadNode::flush_all_diffs() {
  std::vector<PageId> dirty = cache_.dirty_pages();
  if (dirty.empty()) return;
  std::sort(dirty.begin(), dirty.end());  // deterministic wire layout
  if (cluster_.config().comm.batch_diffs && dirty.size() > 1) {
    flush_diffs_batched(std::move(dirty));
    return;
  }
  for (PageId p : dirty) {
    Frame* f = cache_.lookup(p);
    assert(f != nullptr && f->dirty);
    if (flush_frame_diff(p, *f)) pending_notices_.push_back(p);
  }
}

void ThreadNode::flush_diffs_batched(std::vector<PageId> dirty) {
  const CommConfig& comm = cluster_.config().comm;
  const std::size_t max_batch =
      comm.max_batch_pages > 0 ? comm.max_batch_pages : dirty.size();
  std::map<int, std::vector<PageId>> by_home;
  for (PageId p : dirty) by_home[cluster_.space_.home_of(p)].push_back(p);
  std::vector<net::Message> msgs;
  for (auto& [home, pages] : by_home) {
    std::size_t i = 0;
    while (i < pages.size()) {
      net::Message msg;
      msg.dst = home;
      msg.type = net::MsgType::kDiffBatch;
      std::uint64_t in_batch = 0;
      for (; i < pages.size() && in_batch < max_batch; ++i) {
        const PageId p = pages[i];
        Frame* f = cache_.lookup(p);
        assert(f != nullptr && f->dirty);
        const std::size_t before = msg.payload.size();
        if (wire::append_diff_batch_page(msg.payload, p, f->twin, f->data)) {
          ++in_batch;
          ++stats_.diffs_sent;  // per-page accounting, same as the serial path
          stats_.diff_bytes += msg.payload.size() - before - kBatchFrameHeader;
          pending_notices_.push_back(p);
        } else {
          ++stats_.empty_diffs_suppressed;
        }
        f->twin.clear();
        f->twin.shrink_to_fit();
        f->dirty = false;
      }
      if (in_batch > 0) {
        msg.a = in_batch;
        ++stats_.diff_batches_sent;
        stats_.diff_pages_batched += in_batch;
        msgs.push_back(std::move(msg));
      }
    }
  }
  if (!msgs.empty()) request_all(std::move(msgs), &ThreadNode::on_batch_ack);
}

// ---------------------------------------------------------------------------
// Write notices.

std::vector<std::byte> ThreadNode::take_notices() {
  std::vector<PageId> notices = std::move(pending_notices_);
  pending_notices_.clear();
  notices.insert(notices.end(), home_written_.begin(), home_written_.end());
  home_written_.clear();
  std::sort(notices.begin(), notices.end());
  notices.erase(std::unique(notices.begin(), notices.end()), notices.end());
  return wire::encode_pages(notices);
}

void ThreadNode::apply_notices(const std::vector<std::byte>& payload) {
  apply_notices(wire::decode_pages(payload));
}

void ThreadNode::apply_notices(const std::vector<PageId>& pages) {
  for (PageId p : pages) {
    if (cluster_.space_.home_of(p) == id_) continue;  // home copy stays valid
    // A read-ahead of a noticed page would deliver pre-release bytes: drop
    // it from the in-flight set before its reply can be absorbed.
    cancel_prefetch(p);
    Frame* f = cache_.lookup(p);
    if (f == nullptr) continue;
    if (f->prefetched) ++stats_.prefetch_wasted;  // invalidated before use
    if (f->dirty) {
      // Concurrent-writer case: merge our modifications home before
      // dropping the stale copy, so no write is lost.
      if (flush_frame_diff(p, *f)) pending_notices_.push_back(p);
    }
    cache_.erase(p);
    ++stats_.invalidations;
  }
}

// ---------------------------------------------------------------------------
// Synchronization.

void ThreadNode::lock(int lock_id) {
  ++stats_.lock_acquires;
  net::Message msg;
  msg.dst = lock_id % nodes();
  msg.type = net::MsgType::kAcquire;
  msg.a = static_cast<std::uint64_t>(lock_id);
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kAcquireGrant);
  apply_notices(grant.payload);
}

void ThreadNode::unlock(int lock_id) {
  ++stats_.lock_releases;
  flush_all_diffs();
  net::Message msg;
  msg.src = id_;
  msg.dst = lock_id % nodes();
  msg.type = net::MsgType::kRelease;
  msg.a = static_cast<std::uint64_t>(lock_id);
  msg.payload = take_notices();
  cluster_.transport_.send(std::move(msg));  // release needs no reply
}

void ThreadNode::barrier() {
  ++stats_.barriers;
  flush_all_diffs();
  net::Message msg;
  msg.dst = 0;  // barrier owner
  msg.type = net::MsgType::kBarrier;
  msg.payload = take_notices();
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kBarrierGrant);
  const wire::BarrierGrant decoded = wire::decode_barrier_grant(grant.payload);
  apply_notices(decoded.notices);
  for (const auto& [page, new_home] : decoded.migrations) {
    // A page that migrated HERE is now served from the home copy directly;
    // drop any stale cached frame so reads take the home path.  An
    // in-flight read-ahead of it (issued before the barrier) would carry
    // the OLD home's copy — cancel it too.
    if (new_home == id_) {
      cancel_prefetch(page);
      if (Frame* f = cache_.lookup(page); f != nullptr && f->prefetched) {
        ++stats_.prefetch_wasted;
      }
      cache_.erase(page);
    }
  }
}

void ThreadNode::setcv(int cv_id) {
  ++stats_.cv_signals;
  // Release semantics: make this node's writes visible to whoever wakes.
  flush_all_diffs();
  net::Message msg;
  msg.src = id_;
  msg.dst = cv_id % nodes();
  msg.type = net::MsgType::kSetCv;
  msg.a = static_cast<std::uint64_t>(cv_id);
  msg.payload = take_notices();
  cluster_.transport_.send(std::move(msg));  // signal needs no reply
}

void ThreadNode::waitcv(int cv_id) {
  ++stats_.cv_waits;
  net::Message msg;
  msg.dst = cv_id % nodes();
  msg.type = net::MsgType::kWaitCv;
  msg.a = static_cast<std::uint64_t>(cv_id);
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kCvGrant);
  apply_notices(grant.payload);
}

NodeStats ThreadNode::end_of_job(const std::set<PageId>& retained) {
  // Dirty frames of a finished (or failed) program must never survive into
  // the next job: their write notices died with the manager state.  Clean
  // frames of retained pages are immutable service data and stay warm.
  cache_.retain_only(retained);
  home_written_.clear();
  pending_notices_.clear();
  // Read-ahead state dies with the job: replies still in flight will be
  // dropped as stale by their never-reused ids, and the unconsumed pages
  // count as wasted.
  stats_.prefetch_wasted += prefetch_pending_.size();
  prefetch_inflight_.clear();
  prefetch_pending_.clear();
  deferred_prefetch_.clear();
  deferred_dirty_.clear();
  last_faulted_page_ = ~PageId{0};
  NodeStats out = stats_;
  stats_ = NodeStats{};
  account_comm_totals(out);
  return out;
}

GlobalAddr ThreadNode::alloc(std::size_t bytes, int home) {
  net::Message msg;
  msg.dst = 0;
  msg.type = net::MsgType::kAllocate;
  msg.a = bytes;
  msg.b = static_cast<std::uint64_t>(static_cast<std::int64_t>(home));
  net::Message reply = request(std::move(msg));
  assert(reply.type == net::MsgType::kAllocateReply);
  return reply.a;
}

}  // namespace gdsm::dsm
