// The cluster-wide shared address space: pages with home nodes.
//
// "Shared memory is distributed among the nodes on a NUMA-architecture
// basis.  Each shared page has a home node.  A page is always present in its
// home node" (Section 3.1).  The home copy lives here; remote nodes cache
// copies in their PageCache.
//
// Two storage modes, selected by DsmConfig::backend:
//
//   heap (threads): pages are heap blocks in a deque, grown on demand —
//   everything lives in one process.
//
//   placed (process): the home copies live in a fixed-capacity
//   shm_open+mmap data segment and the page table (home ids, page count,
//   the cluster-wide request-id counter) in a second shm control segment,
//   both created before any node process forks so every process inherits
//   the same MAP_SHARED views.  tmpfs backs the segments lazily, so the
//   capacity (DsmConfig::proc_space_bytes) costs address space only.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "dsm/config.h"

namespace gdsm::dsm {

/// Byte address in the shared space.  Address 0 is reserved as "null".
using GlobalAddr = std::uint64_t;
using PageId = std::uint64_t;

class GlobalSpace {
 public:
  GlobalSpace(int n_nodes, const DsmConfig& cfg);
  ~GlobalSpace();
  GlobalSpace(const GlobalSpace&) = delete;
  GlobalSpace& operator=(const GlobalSpace&) = delete;

  /// Allocates `bytes` rounded up to whole pages.  All pages of one call are
  /// homed on the same node (JIAJIA's jia_alloc semantics): `home` if given,
  /// otherwise the next node in a round-robin cycle.
  GlobalAddr alloc(std::size_t bytes, int home = -1);

  /// Allocates with pages homed round-robin page-by-page, the layout the
  /// strategies use to spread border arrays over their writers.
  GlobalAddr alloc_striped(std::size_t bytes, int first_home = 0);

  std::size_t page_bytes() const noexcept { return page_bytes_; }
  PageId page_of(GlobalAddr a) const noexcept { return a / page_bytes_; }
  std::size_t offset_in_page(GlobalAddr a) const noexcept { return a % page_bytes_; }
  std::size_t num_pages() const;

  /// Snapshot of the home-page distribution: element i = pages currently
  /// homed on node i (reflects home migration; src/obs report hook).
  std::vector<std::size_t> pages_per_node() const;

  /// True when the page id maps to an allocated page.
  bool valid_page(PageId p) const;

  int home_of(PageId p) const;

  /// Reassigns a page's home (home migration).  Only safe at a global
  /// synchronization point where no application thread is touching shared
  /// data (the barrier manager calls this between BARR and BARRGRANT).
  void set_home(PageId p, int home);

  /// Home storage of a page; callers must hold the page mutex while home
  /// data can be concurrently touched (home application thread vs. diffs
  /// arriving at the home's service thread).
  std::byte* home_data(PageId p);
  std::mutex& page_mutex(PageId p);

  /// True in the shm-backed mode of the process backend.
  bool placed() const noexcept { return placed_; }

  /// Upper page bound of the placed mode (0 in heap mode).
  std::size_t max_pages() const noexcept { return max_pages_; }

  /// The cluster-wide request-id counter, hosted in the shm control segment
  /// so ids stay unique across node *processes*.  Null in heap mode (the
  /// thread backend keeps its counter in the Cluster).
  std::atomic<std::uint64_t>* shared_request_ids() noexcept {
    return placed_ ? &header_->request_ids : nullptr;
  }

 private:
  struct Page {
    int home;
    std::unique_ptr<std::byte[]> data;
    std::mutex mu;
  };

  /// Head of the placed control segment; homes[] follows it.
  struct PlacedHeader {
    std::atomic<std::uint64_t> n_pages;
    std::atomic<std::uint64_t> request_ids;
  };

  GlobalAddr place_pages(std::size_t n_pages, int home, int stride);

  int n_nodes_;
  std::size_t page_bytes_;
  mutable std::mutex alloc_mu_;
  int next_home_ = 0;
  std::deque<Page> pages_;  // deque: stable element addresses as it grows

  // -- placed mode ---------------------------------------------------------
  bool placed_ = false;
  std::size_t max_pages_ = 0;
  std::byte* data_ = nullptr;            ///< shm data segment
  PlacedHeader* header_ = nullptr;       ///< shm control segment
  std::atomic<std::int32_t>* homes_ = nullptr;  ///< follows header_
  /// Page mutexes are per-process in placed mode: page p's home data is only
  /// ever touched from the process of home_of(p) (plus the parent's
  /// between-jobs host_write), so cross-process mutexes are unnecessary.
  static constexpr std::size_t kMutexShards = 256;
  std::unique_ptr<std::mutex[]> shards_;
};

}  // namespace gdsm::dsm
