// Backend default resolution (GDSM_BACKEND), mirroring comm.cpp's
// GDSM_COMM handling: parsed once, explicit config assignments always win.
#include "dsm/backend.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace gdsm::dsm {

namespace {

Backend env_default() {
  static const Backend resolved = [] {
    Backend pick = Backend::kThreads;
    if (const char* env = std::getenv("GDSM_BACKEND"); env != nullptr) {
      if (std::strcmp(env, "threads") == 0) {
        pick = Backend::kThreads;
      } else if (std::strcmp(env, "process") == 0) {
        pick = Backend::kProcess;
      } else {
        std::fprintf(stderr,
                     "gdsm: GDSM_BACKEND=%s unknown (threads|process), "
                     "using %s\n",
                     env, backend_name(pick));
      }
    }
    return pick;
  }();
  return resolved;
}

}  // namespace

Backend default_backend() noexcept { return env_default(); }

const char* backend_name(Backend backend) noexcept {
  switch (backend) {
    case Backend::kThreads: return "threads";
    case Backend::kProcess: return "process";
  }
  return "unknown";
}

}  // namespace gdsm::dsm
