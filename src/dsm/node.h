// The application-side DSM interface: one Node per cluster process.
//
// API parity with JIAJIA (Section 3.1):
//   jiapid        -> id()
//   jia_alloc     -> alloc()
//   jia_lock      -> lock()
//   jia_unlock    -> unlock()
//   jia_barrier   -> barrier()
//   jia_setcv     -> setcv()
//   jia_waitcv    -> waitcv()
//
// Access to shared memory is API-mediated (read/write) rather than
// SIGSEGV-trapped: per-node page protections cannot exist inside a single
// OS process, but the protocol state machine is the same — fetch on read
// fault, twin on first write, diffs to home nodes at release points, write
// notices invalidating stale copies at acquire points (home-based
// write-invalidate multiple-writer protocol under Scope Consistency).
//
// One deliberate extension: setcv() performs a release (diff flush + write
// notices attached to the signal) and waitcv() performs the matching acquire
// (invalidation of the noticed pages).  The paper's wave-front strategies
// publish a border cell and then signal a condition variable; without
// release/acquire semantics on the cv pair that publication would be
// invisible under pure Scope Consistency.
#pragma once

#include <cstdint>
#include <cstring>
#include <set>
#include <type_traits>
#include <vector>

#include "dsm/page_cache.h"
#include "dsm/stats.h"
#include "net/message.h"

namespace gdsm::dsm {

class Cluster;

class Node {
 public:
  Node(Cluster& cluster, int id);
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const noexcept { return id_; }   ///< JIAJIA's jiapid
  int nodes() const noexcept;

  // -- shared memory access ------------------------------------------------
  template <typename T>
  T read(GlobalAddr a) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read_bytes(a, reinterpret_cast<std::byte*>(&v), sizeof(T));
    return v;
  }

  template <typename T>
  void write(GlobalAddr a, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_bytes(a, reinterpret_cast<const std::byte*>(&v), sizeof(T));
  }

  void read_bytes(GlobalAddr a, std::byte* out, std::size_t n);
  void write_bytes(GlobalAddr a, const std::byte* in, std::size_t n);

  // -- synchronization -----------------------------------------------------
  void lock(int lock_id);
  void unlock(int lock_id);
  void barrier();
  void setcv(int cv_id);
  void waitcv(int cv_id);

  /// Collective-style allocation routed through node 0 (any node may call;
  /// the caller is responsible for telling the other nodes the address).
  GlobalAddr alloc(std::size_t bytes, int home = -1);

  const NodeStats& stats() const noexcept { return stats_; }

  /// Attributes `cells` DP cell updates to this node (strategy loops call
  /// this next to their simd kernel dispatches; see dsm_stats.dp_cells).
  void add_dp_cells(std::uint64_t cells) noexcept { stats_.dp_cells += cells; }

 private:
  friend class Cluster;

  Frame* ensure_cached(PageId p);             ///< read-fault path
  Frame* ensure_writable_frame(PageId p);     ///< write-fault path (twin)
  void flush_frame_diff(PageId p, Frame& frame);  ///< send one diff, await ack
  void flush_all_diffs();                     ///< release-time diff propagation
  std::vector<std::byte> take_notices();      ///< encode + clear pending notices
  void apply_notices(const std::vector<std::byte>& payload);
  void apply_notices(const std::vector<PageId>& pages);
  net::Message request(net::Message msg);     ///< send, block on the reply box

  /// Per-job teardown for the persistent cluster: sweeps the cache keeping
  /// only clean frames of `retained` pages, clears per-interval write
  /// tracking, and returns-and-zeroes this node's counters.
  NodeStats end_of_job(const std::set<PageId>& retained);

  Cluster& cluster_;
  int id_;
  PageCache cache_;
  std::set<PageId> home_written_;     ///< modified home pages (no diff needed)
  std::vector<PageId> pending_notices_;  ///< e.g. dirty evictions mid-interval
  NodeStats stats_;
};

/// Typed view over a shared allocation; element i lives at
/// base + i * sizeof(T).  Elements may straddle page boundaries; Node's
/// byte-level access handles that.
template <typename T>
class SharedArray {
 public:
  static_assert(std::is_trivially_copyable_v<T>);
  SharedArray() = default;
  SharedArray(GlobalAddr base, std::size_t count) : base_(base), count_(count) {}

  GlobalAddr addr(std::size_t i) const noexcept { return base_ + i * sizeof(T); }
  std::size_t size() const noexcept { return count_; }

  T get(Node& node, std::size_t i) const { return node.read<T>(addr(i)); }
  void put(Node& node, std::size_t i, const T& v) const { node.write(addr(i), v); }

  /// Bulk helpers for contiguous ranges.
  void get_range(Node& node, std::size_t first, std::size_t n, T* out) const {
    node.read_bytes(addr(first), reinterpret_cast<std::byte*>(out), n * sizeof(T));
  }
  void put_range(Node& node, std::size_t first, std::size_t n, const T* in) const {
    node.write_bytes(addr(first), reinterpret_cast<const std::byte*>(in),
                     n * sizeof(T));
  }

 private:
  GlobalAddr base_ = 0;
  std::size_t count_ = 0;
};

}  // namespace gdsm::dsm
