// The application-side DSM interface: one Node per cluster process.
//
// API parity with JIAJIA (Section 3.1):
//   jiapid        -> id()
//   jia_alloc     -> alloc()
//   jia_lock      -> lock()
//   jia_unlock    -> unlock()
//   jia_barrier   -> barrier()
//   jia_setcv     -> setcv()
//   jia_waitcv    -> waitcv()
//
// Node is the abstract program-facing surface; the protocol state machine
// behind it exists twice:
//
//   ThreadNode (below, the original): per-node page protections cannot exist
//   inside a single OS process, so access to shared memory is API-mediated
//   (read/write over an explicit PageCache) — but the protocol is the real
//   one: fetch on read fault, twin on first write, diffs to home nodes at
//   release points, write notices invalidating stale copies at acquire
//   points (home-based write-invalidate multiple-writer protocol under
//   Scope Consistency).
//
//   ProcNode (src/dsm/proc): one OS process per node, pages shm_open/mmap'd,
//   remote pages PROT_NONE and a SIGSEGV handler doing genuine
//   fetch-on-fault / twin-on-first-write — JIAJIA's actual mechanism.
//
// One deliberate extension: setcv() performs a release (diff flush + write
// notices attached to the signal) and waitcv() performs the matching acquire
// (invalidation of the noticed pages).  The paper's wave-front strategies
// publish a border cell and then signal a condition variable; without
// release/acquire semantics on the cv pair that publication would be
// invisible under pure Scope Consistency.
#pragma once

#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <type_traits>
#include <vector>

#include "dsm/page_cache.h"
#include "dsm/stats.h"
#include "net/message.h"

namespace gdsm::dsm {

class Cluster;

class Node {
 public:
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  int id() const noexcept { return id_; }   ///< JIAJIA's jiapid
  virtual int nodes() const noexcept = 0;

  // -- shared memory access ------------------------------------------------
  template <typename T>
  T read(GlobalAddr a) {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    read_bytes(a, reinterpret_cast<std::byte*>(&v), sizeof(T));
    return v;
  }

  template <typename T>
  void write(GlobalAddr a, const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_bytes(a, reinterpret_cast<const std::byte*>(&v), sizeof(T));
  }

  virtual void read_bytes(GlobalAddr a, std::byte* out, std::size_t n) = 0;
  virtual void write_bytes(GlobalAddr a, const std::byte* in,
                           std::size_t n) = 0;

  // -- synchronization -----------------------------------------------------
  virtual void lock(int lock_id) = 0;
  virtual void unlock(int lock_id) = 0;
  virtual void barrier() = 0;
  virtual void setcv(int cv_id) = 0;
  virtual void waitcv(int cv_id) = 0;

  /// Collective-style allocation routed through node 0 (any node may call;
  /// the caller is responsible for telling the other nodes the address).
  virtual GlobalAddr alloc(std::size_t bytes, int home = -1) = 0;

  const NodeStats& stats() const noexcept { return stats_; }

  /// Attributes `cells` DP cell updates to this node (strategy loops call
  /// this next to their simd kernel dispatches; see dsm_stats.dp_cells).
  void add_dp_cells(std::uint64_t cells) noexcept { stats_.dp_cells += cells; }

 protected:
  explicit Node(int id) : id_(id) {}

  int id_;
  NodeStats stats_;
};

/// The in-process backend: one ThreadNode per simulated node, API-mediated
/// page cache, mailbox transport.
class ThreadNode final : public Node {
 public:
  ThreadNode(Cluster& cluster, int id);

  int nodes() const noexcept override;

  void read_bytes(GlobalAddr a, std::byte* out, std::size_t n) override;
  void write_bytes(GlobalAddr a, const std::byte* in, std::size_t n) override;

  void lock(int lock_id) override;
  void unlock(int lock_id) override;
  void barrier() override;
  void setcv(int cv_id) override;
  void waitcv(int cv_id) override;

  GlobalAddr alloc(std::size_t bytes, int home = -1) override;

 private:
  friend class Cluster;

  Frame* ensure_cached(PageId p);             ///< read-fault path
  Frame* ensure_writable_frame(PageId p);     ///< write-fault path (twin)

  /// Sends one page's diff to its home and awaits the ack.  Returns false —
  /// and skips the round-trip entirely — when the page's bytes match the
  /// twin (rewritten with identical data); either way the twin is dropped
  /// and the frame is clean afterwards.  Callers record a write notice only
  /// on true.
  bool flush_frame_diff(PageId p, Frame& frame);
  void flush_all_diffs();                     ///< release-time diff propagation
  void flush_diffs_batched(std::vector<PageId> dirty);  ///< kDiffBatch path
  std::vector<std::byte> take_notices();      ///< encode + clear pending notices
  void apply_notices(const std::vector<std::byte>& payload);
  void apply_notices(const std::vector<PageId>& pages);
  net::Message request(net::Message msg);     ///< send, block on the reply box

  /// Windowed multi-request engine for the batched plane: sends up to
  /// comm.max_outstanding of `msgs` (all idempotent: kDiffBatch/kGetPages)
  /// before the first reply must arrive, refills the window as replies are
  /// matched by id, and feeds each matched reply to `on_reply`.  Honours the
  /// retry policy per outstanding request; absorbs prefetch replies that
  /// share the reply box.
  void request_all(std::vector<net::Message> msgs,
                   void (ThreadNode::*on_reply)(net::Message));

  void on_batch_ack(net::Message reply);      ///< kDiffBatchAck (no-op check)
  void on_pages_data(net::Message reply);     ///< insert bulk-fetched pages

  /// Bulk-fetch pre-pass of a multi-page read: collects the span's uncached
  /// remote pages, groups them by home, and fetches each group of >= 2 with
  /// one kGetPages instead of per-page faults (singles fall through to the
  /// normal fault path).
  void prefault_range(GlobalAddr a, std::size_t n);
  Frame* insert_fetched(PageId p, std::vector<std::byte> data,
                        bool prefetched);     ///< cache insert + victim flush

  // -- sequential read-ahead ----------------------------------------------
  /// Called on a read fault at `p`: when the fault extends a forward scan,
  /// asynchronously requests the next comm.prefetch_pages pages (grouped by
  /// home, skipping local/cached/in-flight pages).
  void maybe_prefetch(PageId p);
  /// Safe-point drain: applies deferred prefetch replies, then non-blockingly
  /// absorbs any read-ahead replies already sitting in the reply box.  Must
  /// only run while no blocking request is outstanding.
  void absorb_prefetch_replies();
  /// If `p` is covered by an in-flight prefetch, blocks until that reply
  /// lands (absorbing unrelated prefetch replies meanwhile) and returns the
  /// frame; nullptr when no prefetch covers `p`.
  Frame* await_prefetch(PageId p);
  /// Handles a kPagesData reply whose id is in prefetch_inflight_.
  void absorb_prefetch(net::Message reply);
  /// Drops `p` from any in-flight prefetch so a stale copy is never
  /// inserted (write-notice invalidation, home migration to this node).
  void cancel_prefetch(PageId p);

  /// Flushes dirty frames evicted while a blocking request was in flight
  /// (their kDiff round-trip could not run re-entrantly); called at the
  /// same safe points as absorb_prefetch_replies.
  void flush_deferred_dirty();

  /// Per-job teardown for the persistent cluster: sweeps the cache keeping
  /// only clean frames of `retained` pages, clears per-interval write
  /// tracking, folds the counters into the process-wide comm totals, and
  /// returns-and-zeroes this node's counters.
  NodeStats end_of_job(const std::set<PageId>& retained);

  Cluster& cluster_;
  PageCache cache_;
  std::set<PageId> home_written_;     ///< modified home pages (no diff needed)
  std::vector<PageId> pending_notices_;  ///< e.g. dirty evictions mid-interval

  // -- batched data plane ---------------------------------------------------
  std::vector<std::byte> diff_scratch_;  ///< reused diff-encode buffer
  /// In-flight read-ahead requests: request id -> pages still wanted from
  /// that reply (notices may cancel individual pages before it lands).
  std::map<std::uint64_t, std::vector<PageId>> prefetch_inflight_;
  /// Pages covered by prefetch_inflight_, for O(log n) membership tests.
  std::set<PageId> prefetch_pending_;
  /// Read-ahead replies that arrived while a blocking request was waiting
  /// on the shared reply box; applied at the next safe point.
  std::vector<net::Message> deferred_prefetch_;
  /// Dirty frames evicted mid-request, awaiting their diff flush.
  std::vector<std::pair<PageId, Frame>> deferred_dirty_;
  PageId last_faulted_page_ = ~PageId{0};  ///< sequential-scan detector state
};

/// Typed view over a shared allocation; element i lives at
/// base + i * sizeof(T).  Elements may straddle page boundaries; Node's
/// byte-level access handles that.
template <typename T>
class SharedArray {
 public:
  static_assert(std::is_trivially_copyable_v<T>);
  SharedArray() = default;
  SharedArray(GlobalAddr base, std::size_t count) : base_(base), count_(count) {}

  GlobalAddr addr(std::size_t i) const noexcept { return base_ + i * sizeof(T); }
  std::size_t size() const noexcept { return count_; }

  T get(Node& node, std::size_t i) const { return node.read<T>(addr(i)); }
  void put(Node& node, std::size_t i, const T& v) const { node.write(addr(i), v); }

  /// Bulk helpers for contiguous ranges.
  void get_range(Node& node, std::size_t first, std::size_t n, T* out) const {
    node.read_bytes(addr(first), reinterpret_cast<std::byte*>(out), n * sizeof(T));
  }
  void put_range(Node& node, std::size_t first, std::size_t n, const T* in) const {
    node.write_bytes(addr(first), reinterpret_cast<const std::byte*>(in),
                     n * sizeof(T));
  }

 private:
  GlobalAddr base_ = 0;
  std::size_t count_ = 0;
};

}  // namespace gdsm::dsm
