#include "dsm/global_space.h"

#include <cstring>
#include <stdexcept>

namespace gdsm::dsm {

GlobalSpace::GlobalSpace(int n_nodes, const DsmConfig& cfg)
    : n_nodes_(n_nodes), page_bytes_(cfg.page_bytes) {
  if (n_nodes <= 0) throw std::invalid_argument("GlobalSpace: need >= 1 node");
  if (page_bytes_ < 64) throw std::invalid_argument("GlobalSpace: page too small");
  // Reserve page 0 so that GlobalAddr 0 can serve as a null address.
  const std::scoped_lock lock(alloc_mu_);
  pages_.emplace_back();
  pages_.back().home = 0;
  pages_.back().data = std::make_unique<std::byte[]>(page_bytes_);
}

GlobalAddr GlobalSpace::alloc(std::size_t bytes, int home) {
  if (bytes == 0) bytes = 1;
  const std::size_t n_pages = (bytes + page_bytes_ - 1) / page_bytes_;
  const std::scoped_lock lock(alloc_mu_);
  if (home < 0) {
    home = next_home_;
    next_home_ = (next_home_ + 1) % n_nodes_;
  }
  if (home >= n_nodes_) throw std::invalid_argument("alloc: bad home node");
  const GlobalAddr base = static_cast<GlobalAddr>(pages_.size()) * page_bytes_;
  for (std::size_t k = 0; k < n_pages; ++k) {
    pages_.emplace_back();
    pages_.back().home = home;
    pages_.back().data = std::make_unique<std::byte[]>(page_bytes_);
    std::memset(pages_.back().data.get(), 0, page_bytes_);
  }
  return base;
}

GlobalAddr GlobalSpace::alloc_striped(std::size_t bytes, int first_home) {
  if (bytes == 0) bytes = 1;
  const std::size_t n_pages = (bytes + page_bytes_ - 1) / page_bytes_;
  const std::scoped_lock lock(alloc_mu_);
  const GlobalAddr base = static_cast<GlobalAddr>(pages_.size()) * page_bytes_;
  for (std::size_t k = 0; k < n_pages; ++k) {
    pages_.emplace_back();
    pages_.back().home = static_cast<int>((first_home + k) % n_nodes_);
    pages_.back().data = std::make_unique<std::byte[]>(page_bytes_);
    std::memset(pages_.back().data.get(), 0, page_bytes_);
  }
  return base;
}

std::size_t GlobalSpace::num_pages() const {
  const std::scoped_lock lock(alloc_mu_);
  return pages_.size();
}

std::vector<std::size_t> GlobalSpace::pages_per_node() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(n_nodes_), 0);
  const std::scoped_lock lock(alloc_mu_);
  for (const Page& p : pages_) {
    if (p.home >= 0) ++out[static_cast<std::size_t>(p.home)];
  }
  return out;
}

bool GlobalSpace::valid_page(PageId p) const {
  const std::scoped_lock lock(alloc_mu_);
  return p > 0 && p < pages_.size();
}

int GlobalSpace::home_of(PageId p) const {
  const std::scoped_lock lock(alloc_mu_);
  return pages_.at(p).home;
}

void GlobalSpace::set_home(PageId p, int home) {
  const std::scoped_lock lock(alloc_mu_);
  if (home < 0 || home >= n_nodes_) {
    throw std::invalid_argument("set_home: bad node id");
  }
  pages_.at(p).home = home;
}

std::byte* GlobalSpace::home_data(PageId p) {
  const std::scoped_lock lock(alloc_mu_);
  return pages_.at(p).data.get();
}

std::mutex& GlobalSpace::page_mutex(PageId p) {
  const std::scoped_lock lock(alloc_mu_);
  return pages_.at(p).mu;
}

}  // namespace gdsm::dsm
