#include "dsm/global_space.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>
#include <system_error>

namespace gdsm::dsm {

namespace {

/// Creates an anonymous-after-unlink shm segment and maps it MAP_SHARED.
/// Called before any fork, so every node process inherits the mapping at
/// the same address and no fd needs to survive.
void* map_shared_segment(const char* tag, std::size_t bytes) {
  static std::atomic<std::uint64_t> counter{0};
  const std::string name = "/gdsm-" + std::string(tag) + "-" +
                           std::to_string(::getpid()) + "-" +
                           std::to_string(counter.fetch_add(1));
  const int fd = ::shm_open(name.c_str(), O_RDWR | O_CREAT | O_EXCL, 0600);
  if (fd < 0) {
    throw std::system_error(errno, std::generic_category(),
                            "GlobalSpace: shm_open " + name);
  }
  ::shm_unlink(name.c_str());  // the mapping keeps the segment alive
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "GlobalSpace: ftruncate shm segment");
  }
  void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (p == MAP_FAILED) {
    throw std::system_error(errno, std::generic_category(),
                            "GlobalSpace: mmap shm segment");
  }
  return p;
}

}  // namespace

GlobalSpace::GlobalSpace(int n_nodes, const DsmConfig& cfg)
    : n_nodes_(n_nodes), page_bytes_(cfg.page_bytes) {
  if (n_nodes <= 0) throw std::invalid_argument("GlobalSpace: need >= 1 node");
  if (page_bytes_ < 64) throw std::invalid_argument("GlobalSpace: page too small");
  if (cfg.backend == Backend::kProcess) {
    placed_ = true;
    max_pages_ = cfg.proc_space_bytes / page_bytes_;
    if (max_pages_ < 2) {
      throw std::invalid_argument(
          "GlobalSpace: proc_space_bytes below two pages");
    }
    data_ = static_cast<std::byte*>(
        map_shared_segment("data", max_pages_ * page_bytes_));
    const std::size_t ctrl_bytes =
        sizeof(PlacedHeader) + max_pages_ * sizeof(std::atomic<std::int32_t>);
    void* ctrl = map_shared_segment("ctrl", ctrl_bytes);
    // Placement-new over zeroed tmpfs memory; these types are trivially
    // destructible, so unmapping (or child _exit) is a clean teardown.
    header_ = new (ctrl) PlacedHeader;
    homes_ = new (static_cast<std::byte*>(ctrl) + sizeof(PlacedHeader))
        std::atomic<std::int32_t>[max_pages_];
    shards_ = std::make_unique<std::mutex[]>(kMutexShards);
    // Reserve page 0 so that GlobalAddr 0 can serve as a null address.
    homes_[0].store(0, std::memory_order_relaxed);
    header_->request_ids.store(0, std::memory_order_relaxed);
    header_->n_pages.store(1, std::memory_order_release);
    return;
  }
  // Reserve page 0 so that GlobalAddr 0 can serve as a null address.
  const std::scoped_lock lock(alloc_mu_);
  pages_.emplace_back();
  pages_.back().home = 0;
  pages_.back().data = std::make_unique<std::byte[]>(page_bytes_);
}

GlobalSpace::~GlobalSpace() {
  if (!placed_) return;
  ::munmap(data_, max_pages_ * page_bytes_);
  ::munmap(header_, sizeof(PlacedHeader) +
                        max_pages_ * sizeof(std::atomic<std::int32_t>));
}

GlobalAddr GlobalSpace::place_pages(std::size_t n_pages, int home,
                                    int stride) {
  // alloc_mu_ held.  Allocation happens only in the parent process (node
  // programs route kAllocate to node 0, which the parent runs), so the
  // plain next_home_/mutex suffice; the release-store on n_pages publishes
  // the new homes[] entries to the child processes' acquire-loads.
  const std::uint64_t first = header_->n_pages.load(std::memory_order_relaxed);
  if (first + n_pages > max_pages_) {
    throw std::runtime_error(
        "GlobalSpace: shared space exhausted (" +
        std::to_string((first + n_pages) * page_bytes_) + " bytes needed, " +
        std::to_string(max_pages_ * page_bytes_) +
        " reserved; raise DsmConfig::proc_space_bytes)");
  }
  for (std::size_t k = 0; k < n_pages; ++k) {
    homes_[first + k].store(
        static_cast<std::int32_t>((home + k * static_cast<std::size_t>(
                                              stride)) % n_nodes_),
        std::memory_order_relaxed);
  }
  header_->n_pages.store(first + n_pages, std::memory_order_release);
  return static_cast<GlobalAddr>(first) * page_bytes_;
}

GlobalAddr GlobalSpace::alloc(std::size_t bytes, int home) {
  if (bytes == 0) bytes = 1;
  const std::size_t n_pages = (bytes + page_bytes_ - 1) / page_bytes_;
  const std::scoped_lock lock(alloc_mu_);
  if (home < 0) {
    home = next_home_;
    next_home_ = (next_home_ + 1) % n_nodes_;
  }
  if (home >= n_nodes_) throw std::invalid_argument("alloc: bad home node");
  if (placed_) return place_pages(n_pages, home, /*stride=*/0);
  const GlobalAddr base = static_cast<GlobalAddr>(pages_.size()) * page_bytes_;
  for (std::size_t k = 0; k < n_pages; ++k) {
    pages_.emplace_back();
    pages_.back().home = home;
    pages_.back().data = std::make_unique<std::byte[]>(page_bytes_);
    std::memset(pages_.back().data.get(), 0, page_bytes_);
  }
  return base;
}

GlobalAddr GlobalSpace::alloc_striped(std::size_t bytes, int first_home) {
  if (bytes == 0) bytes = 1;
  const std::size_t n_pages = (bytes + page_bytes_ - 1) / page_bytes_;
  const std::scoped_lock lock(alloc_mu_);
  if (placed_) return place_pages(n_pages, first_home, /*stride=*/1);
  const GlobalAddr base = static_cast<GlobalAddr>(pages_.size()) * page_bytes_;
  for (std::size_t k = 0; k < n_pages; ++k) {
    pages_.emplace_back();
    pages_.back().home = static_cast<int>((first_home + k) % n_nodes_);
    pages_.back().data = std::make_unique<std::byte[]>(page_bytes_);
    std::memset(pages_.back().data.get(), 0, page_bytes_);
  }
  return base;
}

std::size_t GlobalSpace::num_pages() const {
  if (placed_) return header_->n_pages.load(std::memory_order_acquire);
  const std::scoped_lock lock(alloc_mu_);
  return pages_.size();
}

std::vector<std::size_t> GlobalSpace::pages_per_node() const {
  std::vector<std::size_t> out(static_cast<std::size_t>(n_nodes_), 0);
  if (placed_) {
    const std::uint64_t n = header_->n_pages.load(std::memory_order_acquire);
    for (std::uint64_t p = 0; p < n; ++p) {
      const std::int32_t h = homes_[p].load(std::memory_order_relaxed);
      if (h >= 0) ++out[static_cast<std::size_t>(h)];
    }
    return out;
  }
  const std::scoped_lock lock(alloc_mu_);
  for (const Page& p : pages_) {
    if (p.home >= 0) ++out[static_cast<std::size_t>(p.home)];
  }
  return out;
}

bool GlobalSpace::valid_page(PageId p) const {
  if (placed_) {
    return p > 0 && p < header_->n_pages.load(std::memory_order_acquire);
  }
  const std::scoped_lock lock(alloc_mu_);
  return p > 0 && p < pages_.size();
}

int GlobalSpace::home_of(PageId p) const {
  if (placed_) {
    if (p >= header_->n_pages.load(std::memory_order_acquire)) {
      throw std::out_of_range("GlobalSpace: page id out of range");
    }
    return homes_[p].load(std::memory_order_acquire);
  }
  const std::scoped_lock lock(alloc_mu_);
  return pages_.at(p).home;
}

void GlobalSpace::set_home(PageId p, int home) {
  if (home < 0 || home >= n_nodes_) {
    throw std::invalid_argument("set_home: bad node id");
  }
  if (placed_) {
    if (p >= header_->n_pages.load(std::memory_order_acquire)) {
      throw std::out_of_range("GlobalSpace: page id out of range");
    }
    homes_[p].store(home, std::memory_order_release);
    return;
  }
  const std::scoped_lock lock(alloc_mu_);
  pages_.at(p).home = home;
}

std::byte* GlobalSpace::home_data(PageId p) {
  if (placed_) {
    if (p >= header_->n_pages.load(std::memory_order_acquire)) {
      throw std::out_of_range("GlobalSpace: page id out of range");
    }
    return data_ + p * page_bytes_;
  }
  const std::scoped_lock lock(alloc_mu_);
  return pages_.at(p).data.get();
}

std::mutex& GlobalSpace::page_mutex(PageId p) {
  if (placed_) return shards_[p % kMutexShards];
  const std::scoped_lock lock(alloc_mu_);
  return pages_.at(p).mu;
}

}  // namespace gdsm::dsm
