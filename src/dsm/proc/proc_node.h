// The process backend's application-side node: JIAJIA's actual mechanism.
//
// Where ThreadNode mediates every shared access through an explicit
// PageCache, ProcNode maps a *cache region* — one PROT_NONE slot per
// possible page id — and lets the MMU detect access:
//
//   read of an uncached page   -> SIGSEGV -> fetch from home, install
//                                 PROT_READ (fetch-on-fault)
//   first write to a clean page-> SIGSEGV -> copy the twin, upgrade to
//                                 PROT_READ|PROT_WRITE (twin-on-first-write)
//   release (unlock/barrier/cv)-> diff page vs twin, ship to home, downgrade
//                                 back to PROT_READ
//   write notice at acquire    -> downgrade to PROT_NONE (invalidate)
//
// The protocol state machine, counters and message flows mirror ThreadNode
// line for line — the two backends must produce bit-identical results AND
// matching NodeStats, which the differential oracle and the dsm test suite
// assert under GDSM_BACKEND=process.  A cold write faults twice (fetch,
// then twin), matching ThreadNode's ensure_writable_frame accounting of one
// read fault plus one write fault.
//
// Pages homed at this node are not trapped at all: they live in the shm
// data segment (GlobalSpace placed mode) and are read/written directly
// under the page mutex, like ThreadNode's home path.
#pragma once

#include <setjmp.h>

#include <cstdint>
#include <list>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "dsm/config.h"
#include "dsm/global_space.h"
#include "dsm/node.h"
#include "dsm/proc/fault.h"
#include "net/mailbox.h"
#include "net/message.h"

namespace gdsm::dsm::proc {

/// The per-process communication surface ProcNode sends and receives
/// through: the supervisor's router in the parent, a framed socket to the
/// supervisor in a child (src/dsm/proc/supervisor.cpp implements both).
class Plane {
 public:
  virtual ~Plane() = default;
  virtual void send(net::Message msg) = 0;
  virtual net::Mailbox& reply_box() = 0;
};

class ProcNode final : public Node, public FaultSink {
 public:
  ProcNode(int id, int n_nodes, const DsmConfig& cfg, GlobalSpace& space,
           Plane& plane);
  ~ProcNode() override;

  int nodes() const noexcept override { return n_nodes_; }

  void read_bytes(GlobalAddr a, std::byte* out, std::size_t n) override;
  void write_bytes(GlobalAddr a, const std::byte* in, std::size_t n) override;

  void lock(int lock_id) override;
  void unlock(int lock_id) override;
  void barrier() override;
  void setcv(int cv_id) override;
  void waitcv(int cv_id) override;

  GlobalAddr alloc(std::size_t bytes, int home = -1) override;

  /// Per-job teardown; same contract as ThreadNode::end_of_job.  In a child
  /// process this runs right before the stats ship to the supervisor; in
  /// the parent (node 0) the retained pages stay warm across jobs.
  NodeStats end_of_job(const std::set<PageId>& retained);

  /// FaultSink: resolves a fault inside the cache region (fetch or twin).
  bool on_fault(void* addr) override;

 private:
  enum class PState : std::uint8_t {
    kRead,   ///< clean copy, slot PROT_READ
    kWrite,  ///< twinned + dirty, slot PROT_READ|PROT_WRITE
  };
  struct PFrame {
    PState state = PState::kRead;
    bool prefetched = false;
    std::vector<std::byte> twin;  ///< present iff state == kWrite
  };
  /// A dirty frame evicted mid-request: contents copied out so the slot
  /// could be reused, diff flushed at the next safe point.
  struct DeferredDirty {
    PageId page = 0;
    std::vector<std::byte> data;
    std::vector<std::byte> twin;
  };

  /// Cache slot of page p.  Slots are laid out at `slot_stride_` — the DSM
  /// page size rounded up to the OS page size — because mprotect granularity
  /// is the OS page even when the cluster runs sub-4K DSM pages.
  std::byte* slot(PageId p) const noexcept {
    return cache_base_ + p * slot_stride_;
  }
  void protect(PageId p, int prot) const;

  // -- frame table: exact LRU mirror of dsm::PageCache ----------------------
  PFrame* lookup(PageId p);          ///< refreshes recency
  bool contains(PageId p) const;     ///< does not refresh recency
  void install_page(PageId p, const std::byte* data, bool prefetched);
  void erase_frame(PageId p);        ///< drop + downgrade to PROT_NONE
  std::vector<PageId> dirty_pages() const;

  // -- request engine: mirrors ThreadNode ----------------------------------
  std::uint64_t next_request_id();
  net::Message request(net::Message msg);
  void request_all(std::vector<net::Message> msgs,
                   void (ProcNode::*on_reply)(net::Message));
  void on_batch_ack(net::Message reply);
  void on_pages_data(net::Message reply);

  // -- access-path bookkeeping ----------------------------------------------
  /// Userspace half of one remote-page touch, before the (possibly
  /// faulting) memcpy: absorbs pending read-ahead, awaits a covering
  /// prefetch, and counts the cache hit when the page is present — the
  /// mirror of ThreadNode::ensure_cached's hit path.  The miss path is the
  /// fault handler.
  void pre_touch(PageId p);
  /// After the memcpy: deferred dirty flushes, sequential-scan detection,
  /// read-ahead issue — the tail of ThreadNode::ensure_cached.
  void post_touch(PageId p);
  void prefault_range(GlobalAddr a, std::size_t n);

  // -- release/acquire ------------------------------------------------------
  /// Encodes and ships one page's diff (live frame flavour); downgrades the
  /// slot to PROT_READ and returns whether a non-empty diff went out.
  bool flush_frame_diff(PageId p, PFrame& frame);
  /// Deferred flavour over copied-out contents (the slot is long gone).
  bool flush_copied_diff(PageId p, const std::byte* data,
                         const std::byte* twin);
  void flush_all_diffs();
  void flush_diffs_batched(std::vector<PageId> dirty);
  std::vector<std::byte> take_notices();
  void apply_notices(const std::vector<std::byte>& payload);
  void apply_notices(const std::vector<PageId>& pages);

  // -- read-ahead (mirrors ThreadNode) --------------------------------------
  void maybe_prefetch(PageId p);
  void absorb_prefetch_replies();
  PFrame* await_prefetch(PageId p);
  void absorb_prefetch(net::Message reply);
  void cancel_prefetch(PageId p);
  void flush_deferred_dirty();

  int n_nodes_;
  const DsmConfig& cfg_;
  GlobalSpace& space_;
  Plane& plane_;
  std::size_t page_bytes_;
  std::size_t slot_stride_ = 0;  ///< page_bytes_ rounded up to the OS page
  std::size_t cache_capacity_;

  std::byte* cache_base_ = nullptr;  ///< PROT_NONE anonymous region
  std::size_t cache_span_ = 0;       ///< max_pages * slot_stride_

  struct Entry {
    PFrame frame;
    std::list<PageId>::iterator pos;
  };
  std::unordered_map<PageId, Entry> table_;
  std::list<PageId> lru_;  ///< front = most recent, back = next victim

  std::set<PageId> home_written_;
  std::vector<PageId> pending_notices_;
  std::vector<std::byte> diff_scratch_;

  std::map<std::uint64_t, std::vector<PageId>> prefetch_inflight_;
  std::set<PageId> prefetch_pending_;
  std::vector<net::Message> deferred_prefetch_;
  std::vector<DeferredDirty> deferred_dirty_;
  PageId last_faulted_page_ = ~PageId{0};

  // -- fault-escape machinery (application thread only) ---------------------
  /// Armed around each potentially-faulting memcpy; when the fault handler
  /// cannot resolve (reply box closed by an abort), it records the error
  /// here and siglongjmps back so the access loop can throw normally —
  /// C++ exceptions cannot unwind through a kernel signal frame.
  sigjmp_buf fault_jmp_;
  bool fault_jmp_armed_ = false;
  std::string fault_error_;
};

}  // namespace gdsm::dsm::proc
