// Process-wide SIGSEGV trapping for the multi-process DSM backend.
//
// Each node process maps its remote-page cache PROT_NONE and lets the MMU
// detect access, exactly as JIAJIA does: the first touch of an uncached page
// raises SIGSEGV, the handler fetches the page and installs it PROT_READ,
// and a subsequent write raises a second fault that creates the twin and
// upgrades to PROT_READ|PROT_WRITE.  The handler itself is a thin shim: it
// forwards the faulting address to the *thread-local* FaultSink (the
// ProcNode whose application thread is running), so protocol-serving
// threads — which must never fault — keep the default crash behaviour.
//
// Signal-safety: the sink runs full protocol code (mutexes, allocation,
// socket I/O).  That is sound here because the fault is always synchronous,
// raised by a controlled memcpy in ProcNode's access loops — the "handler"
// is ordinary code running on the application thread's stack, not an
// asynchronous interruption of arbitrary state.  SA_NODEFER keeps SIGSEGV
// unblocked during the handler so an abort can siglongjmp back into the
// access loop without leaving the signal masked.
#pragma once

namespace gdsm::dsm::proc {

class FaultSink {
 public:
  virtual ~FaultSink() = default;
  /// Called with the faulting address.  Returns true when the address was
  /// inside this sink's trapped region and the fault has been resolved (the
  /// faulting instruction will be retried); false re-raises with the
  /// default action — a genuine wild access crashes loudly.  Must not throw:
  /// unresolvable protocol failures are expected to siglongjmp back to the
  /// recovery point armed by the access loop.
  virtual bool on_fault(void* addr) = 0;
};

/// Installs the process-wide SIGSEGV handler.  Idempotent; fork()ed children
/// inherit the installation.  ASan builds need
/// ASAN_OPTIONS=handle_segv=0:allow_user_segv_handler=1 so this handler owns
/// the signal.
void install_fault_handler();

/// Binds/unbinds the calling thread's fault sink.  Pass nullptr to restore
/// the default (crash) behaviour.  A fault raised while the sink is already
/// executing (re-entry) also crashes: the sink is detached for the duration
/// of on_fault.
void set_thread_fault_sink(FaultSink* sink);

}  // namespace gdsm::dsm::proc
