#include "dsm/proc/supervisor.h"

#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <type_traits>
#include <utility>

#include "dsm/proc/fault.h"

namespace gdsm::dsm::proc {

namespace {

/// Frame overhead on the wire: u32 body_len + u8 kind.
constexpr std::size_t kFrameOverhead = 5;

/// Socket bytes of a kMessage frame (fixed 38-byte message body header).
std::size_t message_frame_bytes(const net::Message& msg) {
  return kFrameOverhead + 38 + msg.payload.size();
}

// ---------------------------------------------------------------------------
// Child-process side.

/// A child node's communication surface: everything goes over the one
/// socket to the supervisor (even self-addressed messages — the parent
/// routes them back, keeping injection and counting uniform across
/// backends).  The application thread and the service thread both write, so
/// frames are serialized by a mutex.
class ChildPlane final : public Plane {
 public:
  explicit ChildPlane(int fd) : fd_(fd) {}

  void send(net::Message msg) override {
    const std::size_t n = message_frame_bytes(msg);
    const std::scoped_lock guard(write_mu_);
    net::write_message_frame(fd_, msg);
    bytes_sent_.fetch_add(n, std::memory_order_relaxed);
  }

  net::Mailbox& reply_box() override { return reply_; }

  void write_control(net::FrameKind kind, const std::byte* body,
                     std::size_t len) {
    const std::scoped_lock guard(write_mu_);
    net::write_frame(fd_, kind, body, len);
    bytes_sent_.fetch_add(kFrameOverhead + len, std::memory_order_relaxed);
  }

  net::Mailbox reply_;
  net::Mailbox service_;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};

 private:
  int fd_;
  std::mutex write_mu_;
};

/// Entry point of a forked node process.  Three threads, mirroring one
/// node's slice of the thread backend: a demux thread (the socket stand-in
/// for the transport's deliver), a service thread (protocol manager), and
/// the application on the main thread.  Exits via _exit — the parent's
/// C++/at-exit state must not run twice.
[[noreturn]] void child_main(int node, int fd, int n_nodes,
                             const DsmConfig& cfg, GlobalSpace& space,
                             const std::function<void(Node&)>& program) {
  // Die with the supervisor: an orphaned node process must never outlive
  // the test/benchmark that spawned it.
  ::prctl(PR_SET_PDEATHSIG, SIGKILL);
  install_fault_handler();

  ChildPlane plane(fd);
  ProcNode node_obj(node, n_nodes, cfg, space, plane);
  ProtocolManager manager(
      node, n_nodes, cfg.n_locks, cfg.n_cvs, cfg.home_migration, space,
      [&plane](net::Message m) { plane.send(std::move(m)); });

  std::mutex halt_mu;
  std::condition_variable halt_cv;
  bool halted = false;

  std::thread demux([&] {
    try {
      for (;;) {
        auto f = net::read_frame(fd);
        if (!f) ::_exit(1);  // supervisor vanished
        plane.bytes_received_.fetch_add(kFrameOverhead + f->body.size(),
                                        std::memory_order_relaxed);
        switch (f->kind) {
          case net::FrameKind::kMessage: {
            net::Message m = net::decode_message(f->body);
            if (m.to_reply_box) {
              plane.reply_.push(std::move(m));
            } else {
              plane.service_.push(std::move(m));
            }
            break;
          }
          case net::FrameKind::kAbort:
            // Unwind: blocked requesters throw, exactly as the thread
            // backend's abort_requests().
            plane.reply_.close();
            break;
          case net::FrameKind::kHalt: {
            net::Message stop;
            stop.src = -1;
            stop.dst = node;
            stop.type = net::MsgType::kStop;
            stop.a = 0;
            plane.service_.push(std::move(stop));
            {
              const std::scoped_lock guard(halt_mu);
              halted = true;
            }
            halt_cv.notify_all();
            return;
          }
          default:
            break;
        }
      }
    } catch (...) {
      ::_exit(1);  // torn frame or read error: the parent sees EOF
    }
  });

  std::thread service([&] {
    while (auto msg = plane.service_.pop()) {
      if (msg->type == net::MsgType::kStop) {
        if (msg->a == 0) break;
        // Drain marker: everything queued before it has been handled.
        plane.write_control(net::FrameKind::kDrained, nullptr, 0);
        continue;
      }
      try {
        manager.handle_message(*std::move(msg));
      } catch (const std::exception& e) {
        // A service failure (e.g. malformed diff) fails the job but keeps
        // this loop serving so the drain handshake still completes.
        const std::vector<std::byte> body = net::encode_error_body(
            net::classify_error(e), std::string("DSM service: ") + e.what());
        plane.write_control(net::FrameKind::kDone, body.data(), body.size());
      }
    }
  });

  // kDone body: empty = success, otherwise the typed failure encoding —
  // the parent rebuilds the exception type from the kind tag.
  std::vector<std::byte> done_body;
  set_thread_fault_sink(&node_obj);
  try {
    program(node_obj);
  } catch (const std::exception& e) {
    done_body = net::encode_error_body(net::classify_error(e), e.what());
  } catch (...) {
    done_body =
        net::encode_error_body(net::ErrorKind::kUnknown, "unknown exception");
  }
  set_thread_fault_sink(nullptr);
  plane.write_control(net::FrameKind::kDone, done_body.data(),
                      done_body.size());

  {
    std::unique_lock<std::mutex> lk(halt_mu);
    halt_cv.wait(lk, [&] { return halted; });
  }
  service.join();
  demux.join();

  NodeStats stats = node_obj.end_of_job({});
  stats.socket_bytes_sent = plane.bytes_sent_.load(std::memory_order_relaxed);
  stats.socket_bytes_received =
      plane.bytes_received_.load(std::memory_order_relaxed);
  static_assert(std::is_trivially_copyable_v<NodeStats>,
                "NodeStats crosses the process boundary as raw bytes");
  plane.write_control(net::FrameKind::kStats,
                      reinterpret_cast<const std::byte*>(&stats),
                      sizeof(stats));
  ::_exit(0);
}

}  // namespace

// ---------------------------------------------------------------------------
// Outbox.

void Supervisor::Outbox::push(net::FrameKind kind,
                              std::vector<std::byte> body) {
  {
    const std::scoped_lock guard(mu);
    if (closed) return;
    net::Frame f;
    f.kind = kind;
    f.body = std::move(body);
    q.push_back(std::move(f));
  }
  cv.notify_one();
}

void Supervisor::Outbox::close() {
  {
    const std::scoped_lock guard(mu);
    closed = true;
  }
  cv.notify_all();
}

// ---------------------------------------------------------------------------
// Supervisor.

Supervisor::Supervisor(int n_nodes, const DsmConfig& cfg, GlobalSpace& space)
    : n_nodes_(n_nodes), cfg_(cfg), space_(space) {
  install_fault_handler();
  traffic_.reserve(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) {
    traffic_.push_back(std::make_unique<NodeTraffic>());
  }
  children_.resize(static_cast<std::size_t>(n_nodes));
  for (int i = 1; i < n_nodes; ++i) {
    children_[static_cast<std::size_t>(i)] = std::make_unique<Child>();
    children_[static_cast<std::size_t>(i)]->node = i;
  }
  node0_ = std::make_unique<ProcNode>(0, n_nodes, cfg_, space, plane0_);
  manager0_ = std::make_unique<ProtocolManager>(
      0, n_nodes, cfg_.n_locks, cfg_.n_cvs, cfg_.home_migration, space,
      [this](net::Message m) { route(std::move(m)); });
  if (cfg_.faults.enabled()) {
    injector_ = std::make_unique<net::FaultInjector>(
        cfg_.faults, n_nodes, [this](net::Message m) { deliver(std::move(m)); });
  }
}

Supervisor::~Supervisor() = default;

void Supervisor::route(net::Message msg) {
  if (msg.src >= 0 && msg.src != msg.dst) {
    NodeTraffic& t = *traffic_[static_cast<std::size_t>(msg.src)];
    const auto ti = static_cast<std::size_t>(msg.type);
    t.messages[ti].fetch_add(1, std::memory_order_relaxed);
    t.bytes[ti].fetch_add(msg.wire_size(), std::memory_order_relaxed);
  }
  if (injector_ && msg.src >= 0 && msg.type != net::MsgType::kStop) {
    if (injector_->submit(msg)) return;  // delivered later by the injector
  }
  deliver(std::move(msg));
}

void Supervisor::deliver(net::Message msg) {
  if (msg.dst == 0) {
    if (msg.to_reply_box) {
      reply0_.push(std::move(msg));
    } else {
      service0_.push(std::move(msg));
    }
    return;
  }
  Child& c = *children_[static_cast<std::size_t>(msg.dst)];
  if (c.outbox) {
    c.outbox->push(net::FrameKind::kMessage, net::encode_message(msg));
  }
}

void Supervisor::service_loop0() {
  while (auto msg = service0_.pop()) {
    if (msg->type == net::MsgType::kStop) {
      if (msg->a == 0) break;
      {
        const std::scoped_lock guard(mu_);
        parent_drained_ = true;
      }
      cv_.notify_all();
      continue;
    }
    try {
      manager0_->handle_message(*std::move(msg));
    } catch (const std::exception& e) {
      // e.g. placed-mode allocation exhaustion in kAllocate: fail the job
      // and unblock the requester (whose reply will never come) via abort.
      {
        const std::scoped_lock guard(mu_);
        fail_locked(0, net::classify_error(e),
                    std::string("DSM service: ") + e.what());
        abort_locked();
      }
      cv_.notify_all();
    }
  }
}

void Supervisor::writer_loop(Child& c) {
  Outbox& ob = *c.outbox;
  for (;;) {
    net::Frame f;
    {
      std::unique_lock<std::mutex> lk(ob.mu);
      ob.cv.wait(lk, [&] { return ob.closed || !ob.q.empty(); });
      if (ob.q.empty()) return;  // closed and drained
      f = std::move(ob.q.front());
      ob.q.pop_front();
    }
    try {
      net::write_frame(c.fd, f.kind, f.body.data(), f.body.size());
      bytes_sent_.fetch_add(kFrameOverhead + f.body.size(),
                            std::memory_order_relaxed);
    } catch (...) {
      return;  // EPIPE: the reader's EOF path reports the death
    }
  }
}

void Supervisor::reader_loop(Child& c) {
  try {
    for (;;) {
      auto f = net::read_frame(c.fd);
      if (!f) break;  // clean EOF
      bytes_received_.fetch_add(kFrameOverhead + f->body.size(),
                                std::memory_order_relaxed);
      switch (f->kind) {
        case net::FrameKind::kMessage:
          route(net::decode_message(f->body));
          break;
        case net::FrameKind::kDone: {
          const bool failed = !f->body.empty();
          auto [kind, what] =
              net::decode_error_body(f->body.data(), f->body.size());
          {
            const std::scoped_lock guard(mu_);
            c.done = true;
            if (failed) {
              fail_locked(c.node, kind, std::move(what));
              abort_locked();
            }
          }
          cv_.notify_all();
          break;
        }
        case net::FrameKind::kDrained:
          {
            const std::scoped_lock guard(mu_);
            c.drained = true;
          }
          cv_.notify_all();
          break;
        case net::FrameKind::kStats:
          if (f->body.size() == sizeof(NodeStats)) {
            std::memcpy(&c.stats, f->body.data(), sizeof(NodeStats));
            {
              const std::scoped_lock guard(mu_);
              c.got_stats = true;
            }
            cv_.notify_all();
          }
          break;
        default:
          break;
      }
    }
  } catch (...) {
    // Torn frame / ECONNRESET: same as EOF — the peer is gone.
  }
  {
    const std::scoped_lock guard(mu_);
    c.dead = true;
    if (!c.got_stats) {
      // EOF without the final stats frame: the process died rather than
      // completing the shutdown handshake.  Surface it as a node failure
      // and unwind everyone who might be waiting on this peer.
      ++peer_failures_;
      if (!c.done) {
        fail_locked(c.node, net::ErrorKind::kSystem,
                    "node process " + std::to_string(c.node) +
                        " died unexpectedly (socket EOF before completion)");
      } else {
        fail_locked(c.node, net::ErrorKind::kSystem,
                    "node process " + std::to_string(c.node) +
                        " exited before reporting stats");
      }
      abort_locked();
    }
    c.done = true;
    c.drained = true;
  }
  cv_.notify_all();
}

void Supervisor::fail_locked(int node, net::ErrorKind kind, std::string what) {
  failures_.push_back(NodeFailure{node, kind, std::move(what)});
}

void Supervisor::abort_locked() {
  if (aborted_) return;
  aborted_ = true;
  reply0_.close();
  static const char kReason[] = "job aborted";
  const auto* rb = reinterpret_cast<const std::byte*>(kReason);
  for (int i = 1; i < n_nodes_; ++i) {
    Child& c = *children_[static_cast<std::size_t>(i)];
    if (c.outbox) {
      c.outbox->push(net::FrameKind::kAbort,
                     std::vector<std::byte>(rb, rb + sizeof(kReason) - 1));
    }
  }
}

Supervisor::Outcome Supervisor::run_job(
    const std::function<void(Node&)>& program,
    const std::set<PageId>& retained) {
  {
    const std::scoped_lock guard(mu_);
    failures_.clear();
    node0_error_ = nullptr;
    aborted_ = false;
    parent_drained_ = false;
    peer_failures_ = 0;
  }

  // ---- fork every child BEFORE starting any per-job parent thread, so no
  // parent-held mutex (space shards, outboxes, malloc arenas) can be
  // inherited in a locked state.  Only this thread and the idle (drained)
  // injector exist right now.
  std::fflush(nullptr);
  std::vector<int> parent_fds;
  for (int i = 1; i < n_nodes_; ++i) {
    Child& c = *children_[static_cast<std::size_t>(i)];
    c.outbox = std::make_unique<Outbox>();
    c.done = c.drained = c.got_stats = c.dead = false;
    c.stats = NodeStats{};
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::system_error(errno, std::generic_category(),
                              "Supervisor: socketpair");
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      ::close(sv[0]);
      ::close(sv[1]);
      // Reap the children already launched; their PDEATHSIG covers leaks.
      for (int k = 1; k < i; ++k) {
        Child& prev = *children_[static_cast<std::size_t>(k)];
        ::kill(prev.pid, SIGKILL);
        ::waitpid(prev.pid, nullptr, 0);
        ::close(prev.fd);
        prev.pid = -1;
        prev.fd = -1;
      }
      throw std::system_error(err, std::generic_category(),
                              "Supervisor: fork");
    }
    if (pid == 0) {
      ::close(sv[0]);
      for (const int fd : parent_fds) ::close(fd);
      child_main(i, sv[1], n_nodes_, cfg_, space_, program);  // never returns
    }
    ::close(sv[1]);
    c.pid = pid;
    c.fd = sv[0];
    parent_fds.push_back(sv[0]);
  }

  // ---- per-job parent threads.
  for (int i = 1; i < n_nodes_; ++i) {
    Child& c = *children_[static_cast<std::size_t>(i)];
    c.writer = std::thread([this, &c] { writer_loop(c); });
    c.reader = std::thread([this, &c] { reader_loop(c); });
  }
  std::thread service0([this] { service_loop0(); });

  // ---- node 0's program runs right here, on the Cluster's dispatcher
  // thread (persistent ProcNode: retained pages stay warm across jobs).
  set_thread_fault_sink(node0_.get());
  try {
    program(*node0_);
  } catch (...) {
    std::string what = "unknown exception";
    net::ErrorKind kind = net::ErrorKind::kUnknown;
    try {
      throw;
    } catch (const std::exception& e) {
      what = e.what();
      kind = net::classify_error(e);
    } catch (...) {
    }
    {
      const std::scoped_lock guard(mu_);
      if (!node0_error_) node0_error_ = std::current_exception();
      fail_locked(0, kind, std::move(what));
      abort_locked();
    }
    cv_.notify_all();
  }
  set_thread_fault_sink(nullptr);

  // ---- wait for every node's program.  No deadline here: a genuinely
  // deadlocked program hangs exactly as it would on the thread backend, but
  // any failure or child death triggers the abort above, which guarantees
  // progress (closed reply boxes unwind all blocked requesters).
  {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] {
      for (int i = 1; i < n_nodes_; ++i) {
        if (!children_[static_cast<std::size_t>(i)]->done) return false;
      }
      return true;
    });
  }

  // ---- quiesce -> drain markers -> quiesce, mirroring finalize_job: every
  // fault-delayed message lands, then each service loop proves it has
  // applied everything queued before the marker.
  if (injector_) injector_->drain();
  for (int i = 0; i < n_nodes_; ++i) {
    net::Message marker;
    marker.src = -1;  // control: bypasses the injector and the counters
    marker.dst = i;
    marker.type = net::MsgType::kStop;
    marker.a = 1;
    route(std::move(marker));
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto all_drained = [&] {
      if (!parent_drained_) return false;
      for (int i = 1; i < n_nodes_; ++i) {
        Child& c = *children_[static_cast<std::size_t>(i)];
        if (!c.drained && !c.dead) return false;
      }
      return true;
    };
    if (!cv_.wait_for(lk, std::chrono::seconds(60), all_drained)) {
      // A child is wedged (not merely dead — death self-reports).  Kill it;
      // its reader's EOF path marks it dead and the wait below completes.
      for (int i = 1; i < n_nodes_; ++i) {
        Child& c = *children_[static_cast<std::size_t>(i)];
        if (!c.drained && !c.dead && c.pid > 0) ::kill(c.pid, SIGKILL);
      }
      cv_.wait(lk, all_drained);
    }
  }
  if (injector_) injector_->drain();

  // ---- stats collection: halt the live children, each ships its NodeStats
  // and exits.
  for (int i = 1; i < n_nodes_; ++i) {
    Child& c = *children_[static_cast<std::size_t>(i)];
    bool live;
    {
      const std::scoped_lock guard(mu_);
      live = !c.dead;
    }
    if (live) c.outbox->push(net::FrameKind::kHalt, {});
  }
  {
    std::unique_lock<std::mutex> lk(mu_);
    const auto all_reported = [&] {
      for (int i = 1; i < n_nodes_; ++i) {
        Child& c = *children_[static_cast<std::size_t>(i)];
        if (!c.got_stats && !c.dead) return false;
      }
      return true;
    };
    if (!cv_.wait_for(lk, std::chrono::seconds(60), all_reported)) {
      for (int i = 1; i < n_nodes_; ++i) {
        Child& c = *children_[static_cast<std::size_t>(i)];
        if (!c.got_stats && !c.dead && c.pid > 0) ::kill(c.pid, SIGKILL);
      }
      cv_.wait(lk, all_reported);
    }
  }

  // ---- stop the parent service loop (drain-ordered behind any remaining
  // deliveries) and tear the per-job plumbing down.
  {
    net::Message halt;
    halt.src = -1;
    halt.dst = 0;
    halt.type = net::MsgType::kStop;
    halt.a = 0;
    route(std::move(halt));
  }
  service0.join();
  for (int i = 1; i < n_nodes_; ++i) {
    children_[static_cast<std::size_t>(i)]->outbox->close();
  }
  for (int i = 1; i < n_nodes_; ++i) {
    Child& c = *children_[static_cast<std::size_t>(i)];
    c.writer.join();
    c.reader.join();  // returns at EOF once the child exited
    ::close(c.fd);
    c.fd = -1;
    ::waitpid(c.pid, nullptr, 0);
    c.pid = -1;
    c.outbox.reset();
  }

  // ---- finalize.
  Outcome out;
  std::uint64_t job_peer_failures = 0;
  bool was_aborted = false;
  {
    const std::scoped_lock guard(mu_);
    out.failures = failures_;
    out.node0_error = node0_error_;
    job_peer_failures = peer_failures_;
    was_aborted = aborted_;
  }
  const bool failed = !out.failures.empty();
  const std::set<PageId> keep = failed ? std::set<PageId>{} : retained;
  out.stats.resize(static_cast<std::size_t>(n_nodes_));
  out.stats[0] = node0_->end_of_job(keep);
  // Supervisor-level counters ride on node 0's row; account them into the
  // process-wide comm totals too (end_of_job already folded the rest).
  NodeStats extra;
  extra.peer_failures = job_peer_failures;
  extra.socket_bytes_sent = bytes_sent_.exchange(0);
  extra.socket_bytes_received = bytes_received_.exchange(0);
  account_comm_totals(extra);
  out.stats[0] += extra;
  for (int i = 1; i < n_nodes_; ++i) {
    // A dead child's stats stay zero.  The child accounted its comm totals
    // only in its own (now gone) process, so fold them here.
    out.stats[static_cast<std::size_t>(i)] =
        children_[static_cast<std::size_t>(i)]->stats;
    account_comm_totals(out.stats[static_cast<std::size_t>(i)]);
  }

  manager0_->reset();
  // Re-arm node 0's reply path: drop any reply that raced an abort (ids are
  // never reused, so survivors could only ever be dropped as stale).
  reply0_.drain();
  if (was_aborted) reply0_.reopen();
  service0_.drain();
  return out;
}

std::vector<net::TrafficCounters> Supervisor::traffic() const {
  std::vector<net::TrafficCounters> out;
  out.reserve(traffic_.size());
  for (const auto& t : traffic_) {
    net::TrafficCounters c;
    for (std::size_t k = 0;
         k < static_cast<std::size_t>(net::kNumMsgTypes); ++k) {
      c.messages[k] = t->messages[k].load(std::memory_order_relaxed);
      c.bytes[k] = t->bytes[k].load(std::memory_order_relaxed);
    }
    out.push_back(c);
  }
  return out;
}

net::FaultCounters Supervisor::fault_counters() const {
  return injector_ ? injector_->counters() : net::FaultCounters{};
}

}  // namespace gdsm::dsm::proc
