// The process backend's launcher and data plane.
//
// The supervisor lives in the parent process, which doubles as node 0: its
// ProcNode (and the retained-page warmth in it), the node-0 ProtocolManager,
// the fault injector and the cumulative traffic counters all persist across
// jobs, mirroring the thread backend's persistent transport and managers.
// Nodes 1..n-1 are real OS processes fork()ed per job *before* any per-job
// parent thread starts (so no inherited mutex can be held mid-fork), each
// wired to the parent by one Unix-domain stream socketpair speaking the
// net::frame encoding.
//
// Message routing is star-shaped: every node (including node 0 and each
// child's service loop) hands its messages to the supervisor, which counts
// traffic by source, offers the message to the fault injector, and delivers
// it — into node 0's mailboxes directly, or framed onto the destination
// child's socket.  Per-child writes go through a dedicated writer thread
// draining an Outbox so the router never blocks on a full socket buffer;
// a dedicated reader thread per child demultiplexes the opposite direction
// (kMessage -> route, kDone/kDrained/kStats -> job control) and converts
// socket EOF into a node failure instead of a hang.
//
// Job lifecycle (mirrors Cluster::finalize_job):
//   fork children -> start reader/writer/service threads -> run node 0's
//   program on the calling thread -> await every kDone -> injector drain ->
//   kStop drain markers (ack'd by kDrained) -> injector drain -> kHalt ->
//   children ship NodeStats and _exit(0) -> join/waitpid -> end_of_job.
// A failure anywhere (program exception, service error, child death) closes
// node 0's reply box and sends kAbort to every child; unwound requesters
// throw "reply box closed mid-request" and the job finishes with the
// failure list instead of hanging.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dsm/config.h"
#include "dsm/global_space.h"
#include "dsm/manager.h"
#include "dsm/proc/proc_node.h"
#include "dsm/stats.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/mailbox.h"
#include "net/transport.h"

namespace gdsm::dsm::proc {

class Supervisor {
 public:
  /// Everything one job produced; the Cluster folds this into its Job.
  struct Outcome {
    std::vector<NodeFailure> failures;  ///< typed (node, kind, what)
    std::exception_ptr node0_error;  ///< node 0's original exception, if any
    std::vector<NodeStats> stats;    ///< per node; zeros for a dead child
  };

  Supervisor(int n_nodes, const DsmConfig& cfg, GlobalSpace& space);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Runs one SPMD job: node 0's instance on the calling thread, every other
  /// node in a fresh child process.  Serialized by the Cluster (one job at a
  /// time).  `retained` pages survive node 0's end-of-job sweep on success.
  Outcome run_job(const std::function<void(Node&)>& program,
                  const std::set<PageId>& retained);

  /// Cumulative per-source traffic (same counting rules as net::Transport).
  std::vector<net::TrafficCounters> traffic() const;
  net::FaultCounters fault_counters() const;
  std::uint64_t home_migrations() const noexcept {
    return manager0_->home_migrations();
  }

 private:
  /// Frames queued for one child's socket, drained by its writer thread —
  /// the router and the injector must never block on a socket write.
  struct Outbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<net::Frame> q;
    bool closed = false;

    void push(net::FrameKind kind, std::vector<std::byte> body);
    void close();
  };

  /// One child node's shell: persistent across jobs, per-job fields reset by
  /// run_job.  Flags are guarded by mu_.
  struct Child {
    int node = -1;
    pid_t pid = -1;
    int fd = -1;
    std::thread reader;
    std::thread writer;
    std::unique_ptr<Outbox> outbox;
    bool done = false;       ///< program finished (kDone) or process died
    bool drained = false;    ///< drain marker acknowledged (kDrained)
    bool got_stats = false;  ///< final NodeStats received (kStats)
    bool dead = false;       ///< socket EOF observed
    NodeStats stats;
  };

  struct NodeTraffic {
    std::array<std::atomic<std::uint64_t>, net::kNumMsgTypes> messages{};
    std::array<std::atomic<std::uint64_t>, net::kNumMsgTypes> bytes{};
  };

  /// Node 0's Plane: sends go straight to the router, replies come from the
  /// supervisor-owned reply mailbox.
  class ParentPlane final : public Plane {
   public:
    explicit ParentPlane(Supervisor& s) : s_(s) {}
    void send(net::Message msg) override { s_.route(std::move(msg)); }
    net::Mailbox& reply_box() override { return s_.reply0_; }

   private:
    Supervisor& s_;
  };

  /// Counts traffic by source, offers the message to the injector, delivers.
  /// Mirrors net::Transport::send exactly (src < 0 = control, uncounted and
  /// uninjected; self-sends injected but not counted).
  void route(net::Message msg);
  void deliver(net::Message msg);

  void service_loop0();          ///< node 0's protocol service (per job)
  void reader_loop(Child& c);    ///< child -> parent demux (per job)
  void writer_loop(Child& c);    ///< Outbox -> child socket (per job)

  void fail_locked(int node, net::ErrorKind kind, std::string what);
  /// Closes node 0's reply box and sends kAbort to every child; idempotent.
  void abort_locked();

  int n_nodes_;
  const DsmConfig cfg_;
  GlobalSpace& space_;

  ParentPlane plane0_{*this};
  net::Mailbox reply0_;
  net::Mailbox service0_;
  std::unique_ptr<ProcNode> node0_;
  std::unique_ptr<ProtocolManager> manager0_;
  std::unique_ptr<net::FaultInjector> injector_;  ///< null when plan is off

  std::vector<std::unique_ptr<Child>> children_;  ///< [0] unused (parent)
  std::vector<std::unique_ptr<NodeTraffic>> traffic_;
  std::atomic<std::uint64_t> bytes_sent_{0};      ///< parent-side socket out
  std::atomic<std::uint64_t> bytes_received_{0};  ///< parent-side socket in

  mutable std::mutex mu_;       ///< job state: flags, failures, abort
  std::condition_variable cv_;
  std::vector<NodeFailure> failures_;
  std::exception_ptr node0_error_;
  bool aborted_ = false;
  bool parent_drained_ = false;
  std::uint64_t peer_failures_ = 0;  ///< this job's observed peer deaths
};

}  // namespace gdsm::dsm::proc
