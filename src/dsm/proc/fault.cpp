#include "dsm/proc/fault.h"

#include <signal.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace gdsm::dsm::proc {

namespace {

thread_local FaultSink* t_sink = nullptr;

void restore_default_and_retry() {
  // Re-raise with the default action: returning from the handler retries the
  // faulting instruction, which now crashes with a core as if we had never
  // been here.
  struct sigaction dfl = {};
  dfl.sa_handler = SIG_DFL;
  ::sigaction(SIGSEGV, &dfl, nullptr);
}

void segv_handler(int /*sig*/, siginfo_t* info, void* /*uctx*/) {
  const int saved_errno = errno;
  FaultSink* sink = t_sink;
  if (sink == nullptr || info == nullptr) {
    restore_default_and_retry();
    return;
  }
  // Detach for the duration: a nested fault inside the resolution path is a
  // protocol bug and must crash, not recurse.
  t_sink = nullptr;
  const bool resolved = sink->on_fault(info->si_addr);
  if (!resolved) {
    restore_default_and_retry();
    return;
  }
  t_sink = sink;
  errno = saved_errno;
}

}  // namespace

void install_fault_handler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa = {};
    sa.sa_sigaction = segv_handler;
    // SA_NODEFER: SIGSEGV stays unblocked inside the handler, so a
    // siglongjmp escape (job abort mid-fault) leaves the signal mask clean
    // without the per-access cost of sigsetjmp(.., 1).
    sa.sa_flags = SA_SIGINFO | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    if (::sigaction(SIGSEGV, &sa, nullptr) != 0) {
      std::perror("gdsm: sigaction(SIGSEGV)");
      std::abort();
    }
  });
}

void set_thread_fault_sink(FaultSink* sink) { t_sink = sink; }

}  // namespace gdsm::dsm::proc
