// ProcNode: the fault-trapped node of the process backend.
//
// Every protocol decision here mirrors ThreadNode (src/dsm/node.cpp) —
// message flows, counter increments, LRU behaviour, retry handling — so the
// two backends stay bit-identical and stats-identical.  What differs is the
// *mechanism*: access detection is the MMU (mprotect + SIGSEGV) instead of
// explicit cache lookups, and page contents live in a mapped cache region
// instead of per-frame vectors.
#include "dsm/proc/proc_node.h"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "dsm/wire.h"

namespace gdsm::dsm::proc {

namespace {

/// Payload bytes of a diff-batch frame header (u64 page + u32 record_bytes).
constexpr std::size_t kBatchFrameHeader =
    sizeof(PageId) + sizeof(std::uint32_t);

}  // namespace

ProcNode::ProcNode(int id, int n_nodes, const DsmConfig& cfg,
                   GlobalSpace& space, Plane& plane)
    : Node(id),
      n_nodes_(n_nodes),
      cfg_(cfg),
      space_(space),
      plane_(plane),
      page_bytes_(space.page_bytes()),
      cache_capacity_(cfg.cache_pages) {
  if (!space.placed()) {
    throw std::logic_error("ProcNode: requires a placed (shm) GlobalSpace");
  }
  const auto sys = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  slot_stride_ = ((page_bytes_ + sys - 1) / sys) * sys;
  cache_span_ = space.max_pages() * slot_stride_;
  // PROT_NONE + NORESERVE: pure address space until a page is installed, so
  // even a tiny-DSM-page configuration (whose slots are padded to the OS
  // page) costs nothing per untouched slot.
  void* base = ::mmap(nullptr, cache_span_, PROT_NONE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base == MAP_FAILED) {
    throw std::system_error(errno, std::generic_category(),
                            "ProcNode: mmap cache region");
  }
  cache_base_ = static_cast<std::byte*>(base);
}

ProcNode::~ProcNode() {
  if (cache_base_ != nullptr) ::munmap(cache_base_, cache_span_);
}

void ProcNode::protect(PageId p, int prot) const {
  if (::mprotect(slot(p), slot_stride_, prot) != 0) {
    throw std::system_error(errno, std::generic_category(),
                            "ProcNode: mprotect");
  }
}

// ---------------------------------------------------------------------------
// Frame table (exact LRU mirror of dsm::PageCache).

ProcNode::PFrame* ProcNode::lookup(PageId p) {
  const auto it = table_.find(p);
  if (it == table_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second.pos);
  return &it->second.frame;
}

bool ProcNode::contains(PageId p) const { return table_.count(p) != 0; }

void ProcNode::install_page(PageId p, const std::byte* data, bool prefetched) {
  assert(table_.count(p) == 0);
  if (table_.size() >= cache_capacity_) {
    const PageId victim = lru_.back();
    const auto vit = table_.find(victim);
    PFrame& vf = vit->second.frame;
    ++stats_.evictions;
    if (vf.prefetched) ++stats_.prefetch_wasted;
    if (vf.state == PState::kWrite) {
      // The victim's diff needs a blocking round-trip, which must not run
      // here (installs happen inside request_all/absorb paths and the fault
      // handler); copy the contents out and flush at the next safe point.
      DeferredDirty d;
      d.page = victim;
      d.data.assign(slot(victim), slot(victim) + page_bytes_);
      d.twin = std::move(vf.twin);
      deferred_dirty_.push_back(std::move(d));
    }
    protect(victim, PROT_NONE);
    ++stats_.pages_protected;
    lru_.pop_back();
    table_.erase(vit);
  }
  protect(p, PROT_READ | PROT_WRITE);
  std::memcpy(slot(p), data, page_bytes_);
  protect(p, PROT_READ);
  ++stats_.pages_mapped;
  lru_.push_front(p);
  Entry e;
  e.frame.prefetched = prefetched;
  e.pos = lru_.begin();
  table_.emplace(p, std::move(e));
}

void ProcNode::erase_frame(PageId p) {
  const auto it = table_.find(p);
  if (it == table_.end()) return;
  protect(p, PROT_NONE);
  ++stats_.pages_protected;
  lru_.erase(it->second.pos);
  table_.erase(it);
}

std::vector<PageId> ProcNode::dirty_pages() const {
  std::vector<PageId> out;
  for (const auto& [p, e] : table_) {
    if (e.frame.state == PState::kWrite) out.push_back(p);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Request engine (mirrors ThreadNode::request / request_all).

std::uint64_t ProcNode::next_request_id() {
  return space_.shared_request_ids()->fetch_add(1, std::memory_order_relaxed) +
         1;
}

net::Message ProcNode::request(net::Message msg) {
  msg.src = id_;
  msg.c = next_request_id();
  const std::uint64_t id = msg.c;
  const RetryPolicy& retry = cfg_.retry;
  const bool retryable =
      retry.timeout_us > 0 && (msg.type == net::MsgType::kGetPage ||
                               msg.type == net::MsgType::kDiff ||
                               msg.type == net::MsgType::kGetPages ||
                               msg.type == net::MsgType::kDiffBatch);
  net::Message resend;
  if (retryable) resend = msg;
  plane_.send(std::move(msg));

  net::Mailbox& box = plane_.reply_box();
  if (retry.timeout_us == 0) {
    for (;;) {
      auto reply = box.pop();
      if (!reply) {
        throw std::runtime_error("DSM node: reply box closed mid-request");
      }
      if (reply->c != id) {
        if (prefetch_inflight_.count(reply->c) != 0) {
          deferred_prefetch_.push_back(*std::move(reply));
        } else {
          ++stats_.stale_replies;
        }
        continue;
      }
      return *std::move(reply);
    }
  }
  std::uint32_t attempts = 0;
  for (;;) {
    const auto wait = std::chrono::microseconds(
        retry.timeout_us +
        static_cast<std::uint64_t>(attempts) * retry.backoff_us);
    bool closed = false;
    auto reply = box.pop_for(wait, &closed);
    if (reply) {
      if (reply->c != id) {
        if (prefetch_inflight_.count(reply->c) != 0) {
          deferred_prefetch_.push_back(*std::move(reply));
        } else {
          ++stats_.stale_replies;
        }
        continue;
      }
      return *std::move(reply);
    }
    if (closed) {
      throw std::runtime_error("DSM node: reply box closed mid-request");
    }
    ++stats_.request_timeouts;
    if (retryable && attempts < retry.max_retries) {
      ++attempts;
      ++stats_.request_retries;
      net::Message again = resend;
      plane_.send(std::move(again));
    }
  }
}

void ProcNode::request_all(std::vector<net::Message> msgs,
                           void (ProcNode::*on_reply)(net::Message)) {
  const CommConfig& comm = cfg_.comm;
  const RetryPolicy& retry = cfg_.retry;
  const std::size_t window =
      comm.max_outstanding > 0 ? comm.max_outstanding : 1;

  struct Outstanding {
    net::Message resend;
    std::uint32_t attempts = 0;
  };
  std::map<std::uint64_t, Outstanding> outstanding;
  std::size_t next = 0;
  auto send_next = [&] {
    net::Message msg = std::move(msgs[next++]);
    msg.src = id_;
    msg.c = next_request_id();
    Outstanding o;
    if (retry.timeout_us > 0) o.resend = msg;
    outstanding.emplace(msg.c, std::move(o));
    plane_.send(std::move(msg));
  };
  while (next < msgs.size() && outstanding.size() < window) send_next();

  net::Mailbox& box = plane_.reply_box();
  while (!outstanding.empty()) {
    std::optional<net::Message> reply;
    if (retry.timeout_us == 0) {
      reply = box.pop();
      if (!reply) {
        throw std::runtime_error("DSM node: reply box closed mid-request");
      }
    } else {
      bool closed = false;
      reply =
          box.pop_for(std::chrono::microseconds(retry.timeout_us), &closed);
      if (!reply) {
        if (closed) {
          throw std::runtime_error("DSM node: reply box closed mid-request");
        }
        ++stats_.request_timeouts;
        for (auto& [id, o] : outstanding) {
          if (o.attempts < retry.max_retries) {
            ++o.attempts;
            ++stats_.request_retries;
            net::Message again = o.resend;
            plane_.send(std::move(again));
          }
        }
        continue;
      }
    }
    const auto it = outstanding.find(reply->c);
    if (it == outstanding.end()) {
      if (prefetch_inflight_.count(reply->c) != 0) {
        deferred_prefetch_.push_back(*std::move(reply));
      } else {
        ++stats_.stale_replies;
      }
      continue;
    }
    outstanding.erase(it);
    (this->*on_reply)(*std::move(reply));
    if (next < msgs.size()) send_next();
  }
}

void ProcNode::on_batch_ack(net::Message reply) {
  assert(reply.type == net::MsgType::kDiffBatchAck);
  (void)reply;
}

void ProcNode::on_pages_data(net::Message reply) {
  assert(reply.type == net::MsgType::kPagesData);
  for (const wire::PageDataSpan& span :
       wire::decode_pages_data(reply.payload, page_bytes_)) {
    if (contains(span.page)) continue;  // e.g. duplicate retransmit
    install_page(span.page, reply.payload.data() + span.offset,
                 /*prefetched=*/false);
  }
}

void ProcNode::flush_deferred_dirty() {
  while (!deferred_dirty_.empty()) {
    DeferredDirty d = std::move(deferred_dirty_.back());
    deferred_dirty_.pop_back();
    if (flush_copied_diff(d.page, d.data.data(), d.twin.data())) {
      pending_notices_.push_back(d.page);
    }
  }
}

// ---------------------------------------------------------------------------
// Sequential read-ahead (mirrors ThreadNode).

void ProcNode::maybe_prefetch(PageId p) {
  const CommConfig& comm = cfg_.comm;
  if (table_.size() + prefetch_pending_.size() + comm.prefetch_pages + 1 >
      cache_capacity_) {
    return;
  }
  std::map<int, std::vector<PageId>> by_home;
  for (std::uint32_t k = 1; k <= comm.prefetch_pages; ++k) {
    const PageId q = p + k;
    if (!space_.valid_page(q)) break;
    if (space_.home_of(q) == id_) continue;
    if (contains(q)) continue;
    if (prefetch_pending_.count(q) != 0) continue;
    by_home[space_.home_of(q)].push_back(q);
  }
  for (auto& [home, pages] : by_home) {
    net::Message msg;
    msg.src = id_;
    msg.dst = home;
    msg.type = net::MsgType::kGetPages;
    msg.a = pages.size();
    msg.c = next_request_id();
    msg.payload = wire::encode_pages(pages);
    stats_.prefetch_issued += pages.size();
    for (PageId q : pages) prefetch_pending_.insert(q);
    prefetch_inflight_.emplace(msg.c, std::move(pages));
    plane_.send(std::move(msg));  // async: reply absorbed later
  }
}

void ProcNode::absorb_prefetch(net::Message reply) {
  const auto it = prefetch_inflight_.find(reply.c);
  assert(it != prefetch_inflight_.end());
  const std::vector<PageId> wanted = std::move(it->second);
  prefetch_inflight_.erase(it);
  for (const wire::PageDataSpan& span :
       wire::decode_pages_data(reply.payload, page_bytes_)) {
    if (std::find(wanted.begin(), wanted.end(), span.page) == wanted.end()) {
      continue;
    }
    prefetch_pending_.erase(span.page);
    if (contains(span.page)) continue;
    install_page(span.page, reply.payload.data() + span.offset,
                 /*prefetched=*/true);
  }
}

void ProcNode::absorb_prefetch_replies() {
  if (!deferred_prefetch_.empty()) {
    std::vector<net::Message> deferred = std::move(deferred_prefetch_);
    deferred_prefetch_.clear();
    for (auto& msg : deferred) absorb_prefetch(std::move(msg));
  }
  if (!prefetch_inflight_.empty()) {
    net::Mailbox& box = plane_.reply_box();
    while (auto msg = box.try_pop()) {
      if (prefetch_inflight_.count(msg->c) != 0) {
        absorb_prefetch(*std::move(msg));
      } else {
        ++stats_.stale_replies;
      }
    }
  }
  flush_deferred_dirty();
}

ProcNode::PFrame* ProcNode::await_prefetch(PageId p) {
  if (prefetch_pending_.count(p) == 0) return nullptr;
  net::Mailbox& box = plane_.reply_box();
  while (prefetch_pending_.count(p) != 0) {
    auto msg = box.pop();
    if (!msg) {
      throw std::runtime_error("DSM node: reply box closed mid-request");
    }
    if (prefetch_inflight_.count(msg->c) != 0) {
      absorb_prefetch(*std::move(msg));
    } else {
      ++stats_.stale_replies;
    }
  }
  flush_deferred_dirty();
  return lookup(p);
}

void ProcNode::cancel_prefetch(PageId p) {
  if (prefetch_pending_.erase(p) == 0) return;
  ++stats_.prefetch_wasted;
  for (auto& [id, pages] : prefetch_inflight_) {
    const auto it = std::find(pages.begin(), pages.end(), p);
    if (it != pages.end()) {
      pages.erase(it);
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Access paths.

void ProcNode::pre_touch(PageId p) {
  if (!prefetch_inflight_.empty() || !deferred_prefetch_.empty()) {
    absorb_prefetch_replies();
  }
  PFrame* f = lookup(p);
  if (f == nullptr && prefetch_pending_.count(p) != 0) f = await_prefetch(p);
  if (f != nullptr) {
    ++stats_.cache_hits;
    if (f->prefetched) {
      f->prefetched = false;
      ++stats_.prefetch_hits;
    }
  }
  // Absent: the upcoming memcpy faults and the handler fetches, counting the
  // read fault — the miss half of ThreadNode::ensure_cached.
}

void ProcNode::post_touch(PageId p) {
  flush_deferred_dirty();
  const bool sequential = p == last_faulted_page_ + 1;
  last_faulted_page_ = p;
  if (sequential && cfg_.comm.prefetch_pages > 0) maybe_prefetch(p);
}

bool ProcNode::on_fault(void* addr) {
  auto* b = static_cast<std::byte*>(addr);
  if (b < cache_base_ || b >= cache_base_ + cache_span_) return false;
  ++stats_.segv_faults;
  const PageId p =
      static_cast<PageId>(b - cache_base_) / slot_stride_;
  try {
    const auto it = table_.find(p);
    if (it == table_.end()) {
      // First touch of an uncached page: demand-fetch and install read-only.
      // A write access re-faults immediately below (the double-fault scheme),
      // giving the same read-fault-then-write-fault accounting as
      // ThreadNode::ensure_writable_frame.
      ++stats_.read_faults;
      net::Message msg;
      msg.dst = space_.home_of(p);
      msg.type = net::MsgType::kGetPage;
      msg.a = p;
      net::Message reply = request(std::move(msg));
      install_page(p, reply.payload.data(), /*prefetched=*/false);
      return true;
    }
    PFrame& f = it->second.frame;
    if (f.state == PState::kRead) {
      // First write to a clean page: twin for the multiple-writer diff.
      f.twin.assign(slot(p), slot(p) + page_bytes_);
      f.state = PState::kWrite;
      ++stats_.write_faults;
      ++stats_.twins_created;
      protect(p, PROT_READ | PROT_WRITE);
      return true;
    }
    return false;  // fault on a writable slot: a genuine wild access
  } catch (const std::exception& e) {
    fault_error_ = e.what();
  } catch (...) {
    fault_error_ = "unknown exception";
  }
  // The fetch could not complete (typically: reply box closed by a job
  // abort).  A C++ throw cannot unwind through the kernel signal frame, so
  // jump back to the recovery point armed around the faulting memcpy.
  if (fault_jmp_armed_) {
    fault_jmp_armed_ = false;
    siglongjmp(fault_jmp_, 1);
  }
  return false;
}

void ProcNode::prefault_range(GlobalAddr a, std::size_t n) {
  const CommConfig& comm = cfg_.comm;
  if (!prefetch_inflight_.empty() || !deferred_prefetch_.empty()) {
    absorb_prefetch_replies();
  }
  const PageId first = space_.page_of(a);
  const PageId last = space_.page_of(a + n - 1);
  std::size_t budget = cache_capacity_ / 2;
  std::map<int, std::vector<PageId>> by_home;
  for (PageId p = first; p <= last && budget > 0; ++p) {
    if (space_.home_of(p) == id_) continue;
    if (contains(p)) continue;
    if (prefetch_pending_.count(p) != 0) continue;
    by_home[space_.home_of(p)].push_back(p);
    --budget;
  }
  std::vector<net::Message> msgs;
  for (auto& [home, pages] : by_home) {
    if (pages.size() < 2) continue;
    const std::size_t max_chunk =
        comm.max_batch_pages > 0 ? comm.max_batch_pages : pages.size();
    for (std::size_t i = 0; i < pages.size(); i += max_chunk) {
      const std::size_t count = std::min(max_chunk, pages.size() - i);
      const std::vector<PageId> chunk(
          pages.begin() + static_cast<std::ptrdiff_t>(i),
          pages.begin() + static_cast<std::ptrdiff_t>(i + count));
      net::Message msg;
      msg.dst = home;
      msg.type = net::MsgType::kGetPages;
      msg.a = count;
      msg.payload = wire::encode_pages(chunk);
      msgs.push_back(std::move(msg));
      stats_.read_faults += count;
      ++stats_.bulk_fetches;
      stats_.bulk_pages_fetched += count;
    }
  }
  if (!msgs.empty()) {
    request_all(std::move(msgs), &ProcNode::on_pages_data);
    flush_deferred_dirty();
  }
}

void ProcNode::read_bytes(GlobalAddr a, std::byte* out, std::size_t n) {
  if (n == 0) return;
  if (cfg_.comm.bulk_fetch && space_.page_of(a) != space_.page_of(a + n - 1)) {
    prefault_range(a, n);
  }
  while (n > 0) {
    const PageId p = space_.page_of(a);
    const std::size_t off = space_.offset_in_page(a);
    const std::size_t chunk = std::min(n, page_bytes_ - off);
    if (space_.home_of(p) == id_) {
      const std::scoped_lock guard(space_.page_mutex(p));
      std::memcpy(out, space_.home_data(p) + off, chunk);
    } else {
      pre_touch(p);
      if (sigsetjmp(fault_jmp_, 0) != 0) {
        set_thread_fault_sink(this);
        throw std::runtime_error(std::move(fault_error_));
      }
      fault_jmp_armed_ = true;
      std::memcpy(out, slot(p) + off, chunk);  // faults when uncached
      fault_jmp_armed_ = false;
      post_touch(p);
    }
    a += chunk;
    out += chunk;
    n -= chunk;
  }
}

void ProcNode::write_bytes(GlobalAddr a, const std::byte* in, std::size_t n) {
  while (n > 0) {
    const PageId p = space_.page_of(a);
    const std::size_t off = space_.offset_in_page(a);
    const std::size_t chunk = std::min(n, page_bytes_ - off);
    if (space_.home_of(p) == id_) {
      {
        const std::scoped_lock guard(space_.page_mutex(p));
        std::memcpy(space_.home_data(p) + off, in, chunk);
      }
      home_written_.insert(p);
    } else {
      pre_touch(p);
      if (sigsetjmp(fault_jmp_, 0) != 0) {
        set_thread_fault_sink(this);
        throw std::runtime_error(std::move(fault_error_));
      }
      fault_jmp_armed_ = true;
      // Faults once on a clean cached page (twin), twice on an uncached one
      // (fetch, then twin) — JIAJIA's actual write-detection sequence.
      std::memcpy(slot(p) + off, in, chunk);
      fault_jmp_armed_ = false;
      post_touch(p);
    }
    a += chunk;
    in += chunk;
    n -= chunk;
  }
}

// ---------------------------------------------------------------------------
// Release-time diff propagation.

bool ProcNode::flush_frame_diff(PageId p, PFrame& frame) {
  diff_scratch_.clear();
  wire::append_diff(diff_scratch_, frame.twin.data(), slot(p), page_bytes_);
  frame.twin.clear();
  frame.twin.shrink_to_fit();
  frame.state = PState::kRead;
  protect(p, PROT_READ);  // next-interval writes must fault again
  if (diff_scratch_.empty()) {
    ++stats_.empty_diffs_suppressed;
    return false;
  }
  ++stats_.diffs_sent;
  stats_.diff_bytes += diff_scratch_.size();
  net::Message msg;
  msg.dst = space_.home_of(p);
  msg.type = net::MsgType::kDiff;
  msg.a = p;
  msg.payload.assign(diff_scratch_.begin(), diff_scratch_.end());
  net::Message ack = request(std::move(msg));
  assert(ack.type == net::MsgType::kDiffAck);
  (void)ack;
  return true;
}

bool ProcNode::flush_copied_diff(PageId p, const std::byte* data,
                                 const std::byte* twin) {
  diff_scratch_.clear();
  wire::append_diff(diff_scratch_, twin, data, page_bytes_);
  if (diff_scratch_.empty()) {
    ++stats_.empty_diffs_suppressed;
    return false;
  }
  ++stats_.diffs_sent;
  stats_.diff_bytes += diff_scratch_.size();
  net::Message msg;
  msg.dst = space_.home_of(p);
  msg.type = net::MsgType::kDiff;
  msg.a = p;
  msg.payload.assign(diff_scratch_.begin(), diff_scratch_.end());
  net::Message ack = request(std::move(msg));
  assert(ack.type == net::MsgType::kDiffAck);
  (void)ack;
  return true;
}

void ProcNode::flush_all_diffs() {
  std::vector<PageId> dirty = dirty_pages();
  if (dirty.empty()) return;
  std::sort(dirty.begin(), dirty.end());  // deterministic wire layout
  if (cfg_.comm.batch_diffs && dirty.size() > 1) {
    flush_diffs_batched(std::move(dirty));
    return;
  }
  for (PageId p : dirty) {
    PFrame* f = lookup(p);
    assert(f != nullptr && f->state == PState::kWrite);
    if (flush_frame_diff(p, *f)) pending_notices_.push_back(p);
  }
}

void ProcNode::flush_diffs_batched(std::vector<PageId> dirty) {
  const CommConfig& comm = cfg_.comm;
  const std::size_t max_batch =
      comm.max_batch_pages > 0 ? comm.max_batch_pages : dirty.size();
  std::map<int, std::vector<PageId>> by_home;
  for (PageId p : dirty) by_home[space_.home_of(p)].push_back(p);
  std::vector<net::Message> msgs;
  for (auto& [home, pages] : by_home) {
    std::size_t i = 0;
    while (i < pages.size()) {
      net::Message msg;
      msg.dst = home;
      msg.type = net::MsgType::kDiffBatch;
      std::uint64_t in_batch = 0;
      for (; i < pages.size() && in_batch < max_batch; ++i) {
        const PageId p = pages[i];
        PFrame* f = lookup(p);
        assert(f != nullptr && f->state == PState::kWrite);
        const std::size_t before = msg.payload.size();
        if (wire::append_diff_batch_page(msg.payload, p, f->twin.data(),
                                         slot(p), page_bytes_)) {
          ++in_batch;
          ++stats_.diffs_sent;  // per-page accounting, same as the serial path
          stats_.diff_bytes += msg.payload.size() - before - kBatchFrameHeader;
          pending_notices_.push_back(p);
        } else {
          ++stats_.empty_diffs_suppressed;
        }
        f->twin.clear();
        f->twin.shrink_to_fit();
        f->state = PState::kRead;
        protect(p, PROT_READ);
      }
      if (in_batch > 0) {
        msg.a = in_batch;
        ++stats_.diff_batches_sent;
        stats_.diff_pages_batched += in_batch;
        msgs.push_back(std::move(msg));
      }
    }
  }
  if (!msgs.empty()) request_all(std::move(msgs), &ProcNode::on_batch_ack);
}

// ---------------------------------------------------------------------------
// Write notices.

std::vector<std::byte> ProcNode::take_notices() {
  std::vector<PageId> notices = std::move(pending_notices_);
  pending_notices_.clear();
  notices.insert(notices.end(), home_written_.begin(), home_written_.end());
  home_written_.clear();
  std::sort(notices.begin(), notices.end());
  notices.erase(std::unique(notices.begin(), notices.end()), notices.end());
  return wire::encode_pages(notices);
}

void ProcNode::apply_notices(const std::vector<std::byte>& payload) {
  apply_notices(wire::decode_pages(payload));
}

void ProcNode::apply_notices(const std::vector<PageId>& pages) {
  for (PageId p : pages) {
    if (space_.home_of(p) == id_) continue;  // home copy stays valid
    cancel_prefetch(p);
    const auto it = table_.find(p);
    if (it == table_.end()) continue;
    PFrame& f = it->second.frame;
    if (f.prefetched) ++stats_.prefetch_wasted;  // invalidated before use
    if (f.state == PState::kWrite) {
      // Concurrent-writer case: merge our modifications home before
      // dropping the stale copy, so no write is lost.
      if (flush_frame_diff(p, f)) pending_notices_.push_back(p);
    }
    erase_frame(p);
    ++stats_.invalidations;
  }
}

// ---------------------------------------------------------------------------
// Synchronization.

void ProcNode::lock(int lock_id) {
  ++stats_.lock_acquires;
  net::Message msg;
  msg.dst = lock_id % n_nodes_;
  msg.type = net::MsgType::kAcquire;
  msg.a = static_cast<std::uint64_t>(lock_id);
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kAcquireGrant);
  apply_notices(grant.payload);
}

void ProcNode::unlock(int lock_id) {
  ++stats_.lock_releases;
  flush_all_diffs();
  net::Message msg;
  msg.src = id_;
  msg.dst = lock_id % n_nodes_;
  msg.type = net::MsgType::kRelease;
  msg.a = static_cast<std::uint64_t>(lock_id);
  msg.payload = take_notices();
  plane_.send(std::move(msg));  // release needs no reply
}

void ProcNode::barrier() {
  ++stats_.barriers;
  flush_all_diffs();
  net::Message msg;
  msg.dst = 0;  // barrier owner
  msg.type = net::MsgType::kBarrier;
  msg.payload = take_notices();
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kBarrierGrant);
  const wire::BarrierGrant decoded = wire::decode_barrier_grant(grant.payload);
  apply_notices(decoded.notices);
  for (const auto& [page, new_home] : decoded.migrations) {
    // A page that migrated HERE is now served from the home copy directly;
    // drop any stale cached frame so accesses take the home path.
    if (new_home == id_) {
      cancel_prefetch(page);
      if (const auto it = table_.find(page);
          it != table_.end() && it->second.frame.prefetched) {
        ++stats_.prefetch_wasted;
      }
      erase_frame(page);
    }
  }
}

void ProcNode::setcv(int cv_id) {
  ++stats_.cv_signals;
  // Release semantics: make this node's writes visible to whoever wakes.
  flush_all_diffs();
  net::Message msg;
  msg.src = id_;
  msg.dst = cv_id % n_nodes_;
  msg.type = net::MsgType::kSetCv;
  msg.a = static_cast<std::uint64_t>(cv_id);
  msg.payload = take_notices();
  plane_.send(std::move(msg));  // signal needs no reply
}

void ProcNode::waitcv(int cv_id) {
  ++stats_.cv_waits;
  net::Message msg;
  msg.dst = cv_id % n_nodes_;
  msg.type = net::MsgType::kWaitCv;
  msg.a = static_cast<std::uint64_t>(cv_id);
  net::Message grant = request(std::move(msg));
  assert(grant.type == net::MsgType::kCvGrant);
  apply_notices(grant.payload);
}

NodeStats ProcNode::end_of_job(const std::set<PageId>& retained) {
  // Mirror of PageCache::retain_only: dirty frames of a finished program
  // must never survive into the next job (their write notices died with the
  // manager state); clean frames of retained pages stay warm.  Every dropped
  // slot goes back to PROT_NONE so the next job re-faults it.
  for (auto it = table_.begin(); it != table_.end();) {
    const PageId p = it->first;
    const bool keep =
        it->second.frame.state == PState::kRead && retained.count(p) != 0;
    if (keep) {
      ++it;
      continue;
    }
    protect(p, PROT_NONE);
    ++stats_.pages_protected;
    lru_.erase(it->second.pos);
    it = table_.erase(it);
  }
  home_written_.clear();
  pending_notices_.clear();
  stats_.prefetch_wasted += prefetch_pending_.size();
  prefetch_inflight_.clear();
  prefetch_pending_.clear();
  deferred_prefetch_.clear();
  deferred_dirty_.clear();
  last_faulted_page_ = ~PageId{0};
  NodeStats out = stats_;
  stats_ = NodeStats{};
  account_comm_totals(out);
  return out;
}

GlobalAddr ProcNode::alloc(std::size_t bytes, int home) {
  net::Message msg;
  msg.dst = 0;
  msg.type = net::MsgType::kAllocate;
  msg.a = bytes;
  msg.b = static_cast<std::uint64_t>(static_cast<std::int64_t>(home));
  net::Message reply = request(std::move(msg));
  assert(reply.type == net::MsgType::kAllocateReply);
  return reply.a;
}

}  // namespace gdsm::dsm::proc
