// Protocol activity counters, per node and cluster-wide.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dsm/backend.h"
#include "net/frame.h"
#include "net/transport.h"

namespace gdsm::dsm {

/// One node program's failure, with the exception taxonomy preserved across
/// backends: thread-backend failures classify the live exception object,
/// process-backend failures carry the ErrorKind tag of the child's kDone
/// frame (net::make_error rebuilds the typed exception parent-side).
struct NodeFailure {
  int node = -1;
  net::ErrorKind kind = net::ErrorKind::kRuntime;
  std::string what;
};

struct NodeStats {
  std::uint64_t read_faults = 0;    ///< remote page fetches
  std::uint64_t cache_hits = 0;     ///< remote-page accesses served from the
                                    ///< local page cache (v3; the residency
                                    ///< signal of the alignment service)
  std::uint64_t write_faults = 0;   ///< twin creations (first write to a page)
  std::uint64_t diffs_sent = 0;
  std::uint64_t diff_bytes = 0;     ///< payload bytes of diffs
  std::uint64_t invalidations = 0;  ///< pages dropped due to write notices
  std::uint64_t evictions = 0;      ///< frames evicted by the replacement policy
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_releases = 0;
  std::uint64_t barriers = 0;
  std::uint64_t cv_signals = 0;
  std::uint64_t cv_waits = 0;
  std::uint64_t request_timeouts = 0;  ///< reply waits that hit the timeout
  std::uint64_t request_retries = 0;   ///< idempotent requests retransmitted
  std::uint64_t stale_replies = 0;     ///< superseded replies dropped by id
  std::uint64_t dp_cells = 0;  ///< DP cell updates this node pushed through
                               ///< the dispatched kernels (v4; attributes
                               ///< compute volume to the strategy loops)

  // -- batched data plane (v5; see docs/METRICS.md "comm" section) ---------
  std::uint64_t diff_batches_sent = 0;   ///< kDiffBatch messages sent
  std::uint64_t diff_pages_batched = 0;  ///< dirty pages carried by batches
  std::uint64_t bulk_fetches = 0;        ///< kGetPages demand requests sent
  std::uint64_t bulk_pages_fetched = 0;  ///< pages carried by bulk fetches
  std::uint64_t prefetch_issued = 0;     ///< pages requested by read-ahead
  std::uint64_t prefetch_hits = 0;       ///< faults served by a prefetch
  std::uint64_t prefetch_wasted = 0;     ///< prefetched pages never used
  std::uint64_t empty_diffs_suppressed = 0;  ///< no-op diff round-trips skipped

  // -- process backend (v8; see docs/METRICS.md "dsm" section) -------------
  std::uint64_t peer_failures = 0;   ///< remote-peer deaths observed (socket
                                     ///< EOF/ECONNRESET/EPIPE, child exit)
  std::uint64_t segv_faults = 0;     ///< SIGSEGV traps taken by the handler
  std::uint64_t pages_mapped = 0;    ///< cache pages made readable by a fault
  std::uint64_t pages_protected = 0; ///< pages downgraded back to PROT_NONE
  std::uint64_t twins_created = 0;   ///< write-fault twin copies made
  std::uint64_t socket_bytes_sent = 0;      ///< data-plane socket traffic out
  std::uint64_t socket_bytes_received = 0;  ///< data-plane socket traffic in

  NodeStats& operator+=(const NodeStats& o) noexcept {
    read_faults += o.read_faults;
    cache_hits += o.cache_hits;
    write_faults += o.write_faults;
    diffs_sent += o.diffs_sent;
    diff_bytes += o.diff_bytes;
    invalidations += o.invalidations;
    evictions += o.evictions;
    lock_acquires += o.lock_acquires;
    lock_releases += o.lock_releases;
    barriers += o.barriers;
    cv_signals += o.cv_signals;
    cv_waits += o.cv_waits;
    request_timeouts += o.request_timeouts;
    request_retries += o.request_retries;
    stale_replies += o.stale_replies;
    dp_cells += o.dp_cells;
    diff_batches_sent += o.diff_batches_sent;
    diff_pages_batched += o.diff_pages_batched;
    bulk_fetches += o.bulk_fetches;
    bulk_pages_fetched += o.bulk_pages_fetched;
    prefetch_issued += o.prefetch_issued;
    prefetch_hits += o.prefetch_hits;
    prefetch_wasted += o.prefetch_wasted;
    empty_diffs_suppressed += o.empty_diffs_suppressed;
    peer_failures += o.peer_failures;
    segv_faults += o.segv_faults;
    pages_mapped += o.pages_mapped;
    pages_protected += o.pages_protected;
    twins_created += o.twins_created;
    socket_bytes_sent += o.socket_bytes_sent;
    socket_bytes_received += o.socket_bytes_received;
    return *this;
  }

  /// Round-trips the batched plane eliminated relative to the serial plane:
  /// extra pages riding an already-paid batch/bulk exchange, suppressed
  /// empty diffs, and faults absorbed by read-ahead.
  std::uint64_t round_trips_saved() const noexcept {
    const std::uint64_t diff_saved =
        diff_pages_batched > diff_batches_sent
            ? diff_pages_batched - diff_batches_sent : 0;
    const std::uint64_t bulk_saved =
        bulk_pages_fetched > bulk_fetches
            ? bulk_pages_fetched - bulk_fetches : 0;
    return diff_saved + bulk_saved + empty_diffs_suppressed + prefetch_hits;
  }
};

struct DsmStats {
  Backend backend = Backend::kThreads;           ///< which backend ran the job
  std::vector<NodeStats> node;                   ///< per application node
  std::vector<net::TrafficCounters> traffic;     ///< per node, messages sent
  std::uint64_t home_migrations = 0;             ///< pages whose home moved
  net::FaultCounters faults;                     ///< injected-fault activity
  NodeStats total_node() const {
    NodeStats t;
    for (const auto& n : node) t += n;
    return t;
  }
  net::TrafficCounters total_traffic() const {
    net::TrafficCounters t;
    for (const auto& c : traffic) t += c;
    return t;
  }
};

/// Process-wide accumulation of the data-plane counters, mirroring the
/// simd kernel meters: every Node folds its per-job counters in at
/// end_of_job, and the run-report "comm" section snapshots the totals
/// (obs::comm_stats_json).  All functions are thread-safe.
void account_comm_totals(const NodeStats& per_job) noexcept;
NodeStats comm_totals() noexcept;
void reset_comm_totals() noexcept;

}  // namespace gdsm::dsm
