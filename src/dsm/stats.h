// Protocol activity counters, per node and cluster-wide.
#pragma once

#include <cstdint>
#include <vector>

#include "net/transport.h"

namespace gdsm::dsm {

struct NodeStats {
  std::uint64_t read_faults = 0;    ///< remote page fetches
  std::uint64_t cache_hits = 0;     ///< remote-page accesses served from the
                                    ///< local page cache (v3; the residency
                                    ///< signal of the alignment service)
  std::uint64_t write_faults = 0;   ///< twin creations (first write to a page)
  std::uint64_t diffs_sent = 0;
  std::uint64_t diff_bytes = 0;     ///< payload bytes of diffs
  std::uint64_t invalidations = 0;  ///< pages dropped due to write notices
  std::uint64_t evictions = 0;      ///< frames evicted by the replacement policy
  std::uint64_t lock_acquires = 0;
  std::uint64_t lock_releases = 0;
  std::uint64_t barriers = 0;
  std::uint64_t cv_signals = 0;
  std::uint64_t cv_waits = 0;
  std::uint64_t request_timeouts = 0;  ///< reply waits that hit the timeout
  std::uint64_t request_retries = 0;   ///< idempotent requests retransmitted
  std::uint64_t stale_replies = 0;     ///< superseded replies dropped by id
  std::uint64_t dp_cells = 0;  ///< DP cell updates this node pushed through
                               ///< the dispatched kernels (v4; attributes
                               ///< compute volume to the strategy loops)

  NodeStats& operator+=(const NodeStats& o) noexcept {
    read_faults += o.read_faults;
    cache_hits += o.cache_hits;
    write_faults += o.write_faults;
    diffs_sent += o.diffs_sent;
    diff_bytes += o.diff_bytes;
    invalidations += o.invalidations;
    evictions += o.evictions;
    lock_acquires += o.lock_acquires;
    lock_releases += o.lock_releases;
    barriers += o.barriers;
    cv_signals += o.cv_signals;
    cv_waits += o.cv_waits;
    request_timeouts += o.request_timeouts;
    request_retries += o.request_retries;
    stale_replies += o.stale_replies;
    dp_cells += o.dp_cells;
    return *this;
  }
};

struct DsmStats {
  std::vector<NodeStats> node;                   ///< per application node
  std::vector<net::TrafficCounters> traffic;     ///< per node, messages sent
  std::uint64_t home_migrations = 0;             ///< pages whose home moved
  net::FaultCounters faults;                     ///< injected-fault activity
  NodeStats total_node() const {
    NodeStats t;
    for (const auto& n : node) t += n;
    return t;
  }
  net::TrafficCounters total_traffic() const {
    net::TrafficCounters t;
    for (const auto& c : traffic) t += c;
    return t;
  }
};

}  // namespace gdsm::dsm
