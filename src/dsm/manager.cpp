#include "dsm/manager.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "dsm/wire.h"

namespace gdsm::dsm {

ProtocolManager::ProtocolManager(int node, int n_nodes, int n_locks,
                                 int n_cvs, bool home_migration,
                                 GlobalSpace& space, SendFn send)
    : node_(node),
      n_nodes_(n_nodes),
      home_migration_(home_migration),
      space_(space),
      send_(std::move(send)) {
  locks_.resize(static_cast<std::size_t>((n_locks + n_nodes - 1) / n_nodes));
  cvs_.resize(static_cast<std::size_t>((n_cvs + n_nodes - 1) / n_nodes));
  reset();
}

void ProtocolManager::reset() {
  for (auto& l : locks_) {
    l = LockState{};
    l.last_seen.assign(static_cast<std::size_t>(n_nodes_), 0);
  }
  for (auto& cv : cvs_) cv = CvState{};
  barrier_ = BarrierState{};
}

void ProtocolManager::grant_lock(int lock_id, const Waiter& to) {
  LockState& l = locks_[static_cast<std::size_t>(lock_id / n_nodes_)];
  l.held = true;
  l.holder = to.node;
  net::Message grant;
  grant.src = node_;
  grant.dst = to.node;
  grant.type = net::MsgType::kAcquireGrant;
  grant.to_reply_box = true;
  grant.a = static_cast<std::uint64_t>(lock_id);
  grant.c = to.req_id;
  // Write notices this acquirer has not yet seen for this lock's scope.
  std::vector<PageId> unseen(
      l.notice_log.begin() + static_cast<std::ptrdiff_t>(l.last_seen[to.node]),
      l.notice_log.end());
  l.last_seen[to.node] = l.notice_log.size();
  grant.payload = wire::encode_pages(unseen);
  send_(std::move(grant));

  // Garbage-collect the notice log: entries every node has seen can never
  // be granted again, so drop the common prefix (bounds memory on
  // long-running lock-heavy programs).
  const std::size_t seen_by_all =
      *std::min_element(l.last_seen.begin(), l.last_seen.end());
  if (seen_by_all > 1024) {
    l.notice_log.erase(l.notice_log.begin(),
                       l.notice_log.begin() +
                           static_cast<std::ptrdiff_t>(seen_by_all));
    for (auto& seen : l.last_seen) seen -= seen_by_all;
  }
}

void ProtocolManager::handle_message(net::Message msg) {
  using net::MsgType;
  switch (msg.type) {
    case MsgType::kGetPage: {
      const PageId p = msg.a;
      assert(space_.home_of(p) == node_);
      net::Message reply;
      reply.src = node_;
      reply.dst = msg.src;
      reply.type = MsgType::kPageData;
      reply.to_reply_box = true;
      reply.a = p;
      reply.c = msg.c;
      reply.payload.resize(space_.page_bytes());
      {
        const std::scoped_lock guard(space_.page_mutex(p));
        std::memcpy(reply.payload.data(), space_.home_data(p),
                    space_.page_bytes());
      }
      send_(std::move(reply));
      break;
    }
    case MsgType::kDiff: {
      const PageId p = msg.a;
      assert(space_.home_of(p) == node_);
      {
        const std::scoped_lock guard(space_.page_mutex(p));
        wire::apply_diff(space_.home_data(p), space_.page_bytes(), msg.payload);
      }
      net::Message ack;
      ack.src = node_;
      ack.dst = msg.src;
      ack.type = MsgType::kDiffAck;
      ack.to_reply_box = true;
      ack.a = p;
      ack.c = msg.c;
      send_(std::move(ack));
      break;
    }
    case MsgType::kDiffBatch: {
      // Coalesced release: every framed page's diff is applied under its own
      // page mutex, then one ack covers the whole batch.  Re-applying a
      // retransmitted batch is harmless (diffs are idempotent), and the
      // releaser drops the duplicate ack as stale by id.
      for (const wire::DiffBatchSpan& span :
           wire::decode_diff_batch(msg.payload)) {
        assert(space_.home_of(span.page) == node_);
        const std::scoped_lock guard(space_.page_mutex(span.page));
        wire::apply_diff(space_.home_data(span.page), space_.page_bytes(),
                         msg.payload.data() + span.offset, span.len);
      }
      net::Message ack;
      ack.src = node_;
      ack.dst = msg.src;
      ack.type = MsgType::kDiffBatchAck;
      ack.to_reply_box = true;
      ack.a = msg.a;  // pages applied, echoed for the releaser's assert
      ack.c = msg.c;
      send_(std::move(ack));
      break;
    }
    case MsgType::kGetPages: {
      // Bulk fetch (demand prefault or read-ahead): one reply carries every
      // requested page's contents, each copied under its page mutex.
      const std::vector<PageId> pages = wire::decode_pages(msg.payload);
      net::Message reply;
      reply.src = node_;
      reply.dst = msg.src;
      reply.type = MsgType::kPagesData;
      reply.to_reply_box = true;
      reply.a = pages.size();
      reply.c = msg.c;
      reply.payload.reserve(pages.size() *
                            (sizeof(PageId) + space_.page_bytes()));
      for (PageId p : pages) {
        assert(space_.home_of(p) == node_);
        const std::scoped_lock guard(space_.page_mutex(p));
        wire::append_page_data(reply.payload, p, space_.home_data(p),
                               space_.page_bytes());
      }
      send_(std::move(reply));
      break;
    }
    case MsgType::kAcquire: {
      const int lock_id = static_cast<int>(msg.a);
      LockState& l = locks_[static_cast<std::size_t>(lock_id / n_nodes_)];
      if (l.held) {
        l.waiting.push_back(Waiter{msg.src, msg.c});
      } else {
        grant_lock(lock_id, Waiter{msg.src, msg.c});
      }
      break;
    }
    case MsgType::kRelease: {
      const int lock_id = static_cast<int>(msg.a);
      LockState& l = locks_[static_cast<std::size_t>(lock_id / n_nodes_)];
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      l.notice_log.insert(l.notice_log.end(), notices.begin(), notices.end());
      l.held = false;
      l.holder = -1;
      if (!l.waiting.empty()) {
        const Waiter next = l.waiting.front();
        l.waiting.pop_front();
        grant_lock(lock_id, next);
      }
      break;
    }
    case MsgType::kBarrier: {
      assert(node_ == 0);
      if (barrier_.arrival_req.empty()) {
        barrier_.arrival_req.assign(static_cast<std::size_t>(n_nodes_), 0);
      }
      barrier_.arrival_req[static_cast<std::size_t>(msg.src)] = msg.c;
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      barrier_.notices.insert(barrier_.notices.end(), notices.begin(),
                              notices.end());
      for (PageId p : notices) {
        const auto [it, inserted] = barrier_.writers.emplace(p, msg.src);
        if (!inserted && it->second != msg.src) it->second = -1;
      }
      if (++barrier_.arrived == n_nodes_) {
        std::sort(barrier_.notices.begin(), barrier_.notices.end());
        barrier_.notices.erase(
            std::unique(barrier_.notices.begin(), barrier_.notices.end()),
            barrier_.notices.end());

        wire::BarrierGrant grant_body;
        grant_body.notices = barrier_.notices;
        if (home_migration_) {
          // Home migration: a page written by exactly one node this interval
          // migrates its home to that writer, so its future modifications
          // need no diffs at all.
          for (const auto& [page, writer] : barrier_.writers) {
            if (writer >= 0 && writer != space_.home_of(page)) {
              space_.set_home(page, writer);
              grant_body.migrations.emplace_back(page, writer);
              home_migrations_.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        const std::vector<std::byte> payload =
            wire::encode_barrier_grant(grant_body);
        for (int dst = 0; dst < n_nodes_; ++dst) {
          net::Message grant;
          grant.src = node_;
          grant.dst = dst;
          grant.type = MsgType::kBarrierGrant;
          grant.to_reply_box = true;
          grant.c = barrier_.arrival_req[static_cast<std::size_t>(dst)];
          grant.payload = payload;
          send_(std::move(grant));
        }
        barrier_ = BarrierState{};
      }
      break;
    }
    case MsgType::kSetCv: {
      const int cv_id = static_cast<int>(msg.a);
      CvState& cv = cvs_[static_cast<std::size_t>(cv_id / n_nodes_)];
      const std::vector<PageId> notices = wire::decode_pages(msg.payload);
      cv.pending_notices.insert(cv.pending_notices.end(), notices.begin(),
                                notices.end());
      if (!cv.waiters.empty()) {
        const Waiter waiter = cv.waiters.front();
        cv.waiters.pop_front();
        net::Message grant;
        grant.src = node_;
        grant.dst = waiter.node;
        grant.type = MsgType::kCvGrant;
        grant.to_reply_box = true;
        grant.a = static_cast<std::uint64_t>(cv_id);
        grant.c = waiter.req_id;
        grant.payload = wire::encode_pages(cv.pending_notices);
        cv.pending_notices.clear();
        send_(std::move(grant));
      } else {
        ++cv.count;
      }
      break;
    }
    case MsgType::kWaitCv: {
      const int cv_id = static_cast<int>(msg.a);
      CvState& cv = cvs_[static_cast<std::size_t>(cv_id / n_nodes_)];
      if (cv.count > 0) {
        --cv.count;
        net::Message grant;
        grant.src = node_;
        grant.dst = msg.src;
        grant.type = MsgType::kCvGrant;
        grant.to_reply_box = true;
        grant.a = static_cast<std::uint64_t>(cv_id);
        grant.c = msg.c;
        grant.payload = wire::encode_pages(cv.pending_notices);
        cv.pending_notices.clear();
        send_(std::move(grant));
      } else {
        cv.waiters.push_back(Waiter{msg.src, msg.c});
      }
      break;
    }
    case MsgType::kAllocate: {
      assert(node_ == 0);
      const auto bytes = static_cast<std::size_t>(msg.a);
      const int home = static_cast<int>(static_cast<std::int64_t>(msg.b));
      net::Message reply;
      reply.src = node_;
      reply.dst = msg.src;
      reply.type = MsgType::kAllocateReply;
      reply.to_reply_box = true;
      reply.a = space_.alloc(bytes, home);
      reply.c = msg.c;
      send_(std::move(reply));
      break;
    }
    default:
      throw std::logic_error("DSM service: unexpected message type");
  }
}

}  // namespace gdsm::dsm
