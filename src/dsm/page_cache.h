// Per-node cache of remote pages with LRU replacement.
//
// A node's cache is touched only by that node's application thread, so no
// internal locking is needed; coherence actions arrive as write notices that
// the application thread itself applies at acquire/barrier time (scope
// consistency makes this sound).
#pragma once

#include <cstddef>
#include <list>
#include <set>
#include <unordered_map>
#include <vector>

#include "dsm/global_space.h"

namespace gdsm::dsm {

/// One cached remote page.  `twin` holds a pristine copy made at the first
/// write after (re)validation, enabling the multiple-writer diff.
struct Frame {
  std::vector<std::byte> data;
  std::vector<std::byte> twin;  ///< empty while the frame is clean
  bool dirty = false;
  bool prefetched = false;  ///< filled by read-ahead, not yet touched by the
                            ///< application (cleared at first use; still set
                            ///< at invalidation = the prefetch was wasted)
};

class PageCache {
 public:
  explicit PageCache(std::size_t capacity_pages)
      : capacity_(capacity_pages ? capacity_pages : 1) {}

  /// Returns the frame for `p`, or nullptr on a miss.  Refreshes LRU order.
  Frame* lookup(PageId p);

  /// Membership test that does NOT refresh LRU order (the batched data
  /// plane probes candidate pages without marking them recently used).
  bool contains(PageId p) const { return map_.count(p) != 0; }

  /// Inserts a page (must not be present).  If at capacity, evicts the least
  /// recently used frame first and reports it via `evicted` so the caller
  /// can flush a dirty victim home.  Returns the new frame.
  struct Evicted {
    PageId page = 0;
    Frame frame;
    bool valid = false;
  };
  Frame* insert(PageId p, std::vector<std::byte> data, Evicted* evicted);

  /// Drops a page (invalidation).  Returns true if it was present.
  bool erase(PageId p);

  /// Drops every frame except *clean* frames of pages in `keep` (the
  /// persistent cluster's end-of-job sweep: resident read-only data stays
  /// warm, everything else reverts to the cold-cache semantics of a fresh
  /// node).  Returns the number of frames dropped.
  std::size_t retain_only(const std::set<PageId>& keep);

  /// All dirty page ids, in no particular order.
  std::vector<PageId> dirty_pages() const;

  std::size_t size() const noexcept { return map_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Entry {
    Frame frame;
    std::list<PageId>::iterator lru_it;
  };
  std::size_t capacity_;
  std::list<PageId> lru_;  // front = most recent
  std::unordered_map<PageId, Entry> map_;
};

}  // namespace gdsm::dsm
