// The service-side protocol state machine of one node: page serving, diff
// application, lock/barrier/cv management for the ids this node manages
// (id % n_nodes), and node-0 allocation.
//
// Extracted from Cluster so both backends run the identical code: the
// thread backend gives each node's service thread a ProtocolManager wired
// to the in-process transport; the process backend (src/dsm/proc)
// instantiates the same class inside each node process, wired to the
// socket plane.  A ProtocolManager is single-threaded by construction —
// only the owning node's service loop calls handle_message — which is the
// same discipline the Cluster members had ("each element is touched only
// by the service thread of its managing node").
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "dsm/global_space.h"
#include "net/message.h"

namespace gdsm::dsm {

class ProtocolManager {
 public:
  /// How this manager emits protocol messages (grants, replies, acks).
  using SendFn = std::function<void(net::Message)>;

  /// `node` is the managing node's id; it serves lock/cv ids with
  /// id % n_nodes == node, the barrier iff node == 0, and kAllocate iff
  /// node == 0.  `home_migration` enables the barrier-time migration policy.
  ProtocolManager(int node, int n_nodes, int n_locks, int n_cvs,
                  bool home_migration, GlobalSpace& space, SendFn send);

  /// Clears all lock/cv/barrier state (between jobs).  Home-migration
  /// totals survive — they are cumulative like the traffic counters.
  void reset();

  /// Serves one protocol message addressed to this node's service box.
  void handle_message(net::Message msg);

  /// Pages whose home this manager migrated (nonzero only at node 0).
  std::uint64_t home_migrations() const noexcept {
    return home_migrations_.load(std::memory_order_relaxed);
  }

 private:
  /// A node blocked in a request, remembered with the request id its grant
  /// must echo (replies are matched by id on the requester side, so retried
  /// requests cannot be satisfied by a stale reply).
  struct Waiter {
    int node = -1;
    std::uint64_t req_id = 0;
  };
  struct LockState {
    bool held = false;
    int holder = -1;
    std::deque<Waiter> waiting;
    std::vector<PageId> notice_log;
    std::vector<std::size_t> last_seen;  // per node, index into notice_log
  };
  struct CvState {
    int count = 0;
    std::deque<Waiter> waiters;
    std::vector<PageId> pending_notices;
  };
  struct BarrierState {
    int arrived = 0;
    std::vector<std::uint64_t> arrival_req;  // per node, echoed in the grant
    std::vector<PageId> notices;
    /// page -> single writer this interval, or -1 once multiple nodes wrote
    /// it (used by the home-migration policy).
    std::map<PageId, int> writers;
  };

  void grant_lock(int lock_id, const Waiter& to);

  int node_;
  int n_nodes_;
  bool home_migration_;
  GlobalSpace& space_;
  SendFn send_;

  std::vector<LockState> locks_;  // [lock_id / n_nodes]
  std::vector<CvState> cvs_;      // [cv_id / n_nodes]
  BarrierState barrier_;          // used only when node_ == 0
  /// Atomic because stats() readers race the node-0 service thread.
  std::atomic<std::uint64_t> home_migrations_{0};
};

}  // namespace gdsm::dsm
