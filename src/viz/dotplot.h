// Visualization of similarity regions (the paper's Fig. 14 tool, rendered
// as text or a PPM image instead of an X11 window) and Fig. 16-style
// alignment records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sw/alignment.h"
#include "util/sequence.h"

namespace gdsm::viz {

struct DotPlotOptions {
  std::size_t columns = 72;  ///< text grid width
  std::size_t rows = 36;     ///< text grid height
  char mark = '*';
  char empty = '.';
};

/// ASCII dot plot: axis x = position in s, axis y = position in t; every
/// similarity region paints the cells its diagonal crosses.
std::string render_dotplot(const std::vector<Candidate>& regions,
                           std::size_t s_len, std::size_t t_len,
                           const DotPlotOptions& opt = {});

/// Binary PPM (P6) image of the same plot, one pixel per cell, regions drawn
/// as diagonal strokes.  Returns the file size written.
std::size_t write_dotplot_ppm(const std::string& path,
                              const std::vector<Candidate>& regions,
                              std::size_t s_len, std::size_t t_len,
                              std::size_t width = 512, std::size_t height = 512);

/// Fig. 16-style record of a batch of alignments, with the gapped rows
/// wrapped at `wrap` columns.
std::string format_alignment_report(const Sequence& s, const Sequence& t,
                                    const std::vector<Alignment>& alignments,
                                    std::size_t wrap = 60);

/// ASCII heat map of the pre-process strategy's result matrix (hit counts
/// per band x column-group): density rendered with " .:-=+*#%@" scaled to
/// the hottest cell.
std::string render_heatmap(
    const std::vector<std::vector<std::uint64_t>>& matrix,
    const std::string& title = "result matrix");

}  // namespace gdsm::viz
