#include "viz/dotplot.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace gdsm::viz {
namespace {

// Walks the diagonal of a region in normalized [0,1) plot space, invoking
// put(x_cell, y_cell) for each step.
template <typename Put>
void stroke(const gdsm::Candidate& r, std::size_t s_len, std::size_t t_len,
            std::size_t w, std::size_t h, Put put) {
  if (s_len == 0 || t_len == 0) return;
  const std::size_t steps = std::max<std::size_t>(
      {r.s_span(), r.t_span(), 1});
  for (std::size_t k = 0; k <= steps; ++k) {
    const double fs = (r.s_begin - 1 + (double(r.s_span()) * k) / steps) / s_len;
    const double ft = (r.t_begin - 1 + (double(r.t_span()) * k) / steps) / t_len;
    const std::size_t x = std::min(w - 1, static_cast<std::size_t>(fs * w));
    const std::size_t y = std::min(h - 1, static_cast<std::size_t>(ft * h));
    put(x, y);
  }
}

}  // namespace

std::string render_dotplot(const std::vector<Candidate>& regions,
                           std::size_t s_len, std::size_t t_len,
                           const DotPlotOptions& opt) {
  const std::size_t w = std::max<std::size_t>(opt.columns, 2);
  const std::size_t h = std::max<std::size_t>(opt.rows, 2);
  std::vector<std::string> grid(h, std::string(w, opt.empty));
  for (const Candidate& r : regions) {
    stroke(r, s_len, t_len, w, h,
           [&](std::size_t x, std::size_t y) { grid[y][x] = opt.mark; });
  }
  std::ostringstream out;
  out << "dot plot: x = s (1.." << s_len << "), y = t (1.." << t_len << "), "
      << regions.size() << " similarity regions\n";
  out << '+' << std::string(w, '-') << "+\n";
  for (const auto& row : grid) out << '|' << row << "|\n";
  out << '+' << std::string(w, '-') << "+\n";
  return out.str();
}

std::size_t write_dotplot_ppm(const std::string& path,
                              const std::vector<Candidate>& regions,
                              std::size_t s_len, std::size_t t_len,
                              std::size_t width, std::size_t height) {
  std::vector<unsigned char> pixels(width * height * 3, 255);
  for (const Candidate& r : regions) {
    stroke(r, s_len, t_len, width, height, [&](std::size_t x, std::size_t y) {
      unsigned char* px = &pixels[(y * width + x) * 3];
      px[0] = 180;
      px[1] = 0;
      px[2] = 0;
    });
  }
  FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) throw std::runtime_error("write_dotplot_ppm: cannot open " + path);
  std::fprintf(f, "P6\n%zu %zu\n255\n", width, height);
  std::fwrite(pixels.data(), 1, pixels.size(), f);
  const long size = std::ftell(f);
  std::fclose(f);
  return static_cast<std::size_t>(size);
}

std::string format_alignment_report(const Sequence& s, const Sequence& t,
                                    const std::vector<Alignment>& alignments,
                                    std::size_t wrap) {
  std::ostringstream out;
  for (const Alignment& al : alignments) {
    out << "initial_x: " << al.s_begin + 1 << " final_x: " << al.s_end() << "\n"
        << "initial_y: " << al.t_begin + 1 << " final_y: " << al.t_end() << "\n"
        << "similarity: " << al.score << "\n";
    const auto lines = al.render(s, t);
    for (std::size_t off = 0; off < lines[0].size(); off += wrap) {
      out << "align_s: " << lines[0].substr(off, wrap) << "\n"
          << "         " << lines[1].substr(off, wrap) << "\n"
          << "align_t: " << lines[2].substr(off, wrap) << "\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string render_heatmap(
    const std::vector<std::vector<std::uint64_t>>& matrix,
    const std::string& title) {
  static constexpr char kShades[] = " .:-=+*#%@";
  constexpr int kLevels = 10;
  std::uint64_t peak = 0;
  for (const auto& row : matrix) {
    for (const auto v : row) peak = std::max(peak, v);
  }
  std::ostringstream out;
  out << title << " (peak " << peak << " hits)\n";
  for (std::size_t b = 0; b < matrix.size(); ++b) {
    out << "band ";
    out.width(3);
    out << b << " |";
    for (const auto v : matrix[b]) {
      int level = 0;
      if (peak > 0 && v > 0) {
        level = 1 + static_cast<int>((v * (kLevels - 2)) / peak);
      }
      out << kShades[level];
    }
    out << "|\n";
  }
  return out.str();
}

}  // namespace gdsm::viz
