// The band/block compute loop shared by the DSM and the message-passing
// variants of the blocked heuristic strategy.  The only difference between
// the two is HOW a block's top boundary arrives and HOW its bottom boundary
// is published, so those are injected as callables.
#pragma once

#include <span>
#include <vector>

#include "core/partition.h"
#include "sw/heuristic_scan.h"
#include "util/sequence.h"

namespace gdsm::core {

/// Computes all blocks of band `b` left to right.
///
/// * `recv_top(k, out)` fills `out` (block_width(k) cells) with the bottom
///   row of band b-1 over block k's columns; never called for band 0.
/// * `publish_bottom(k, bottom)` hands the finished block's bottom row to
///   the next band's owner; never called for the last band (whose bottom is
///   the matrix's final row: still-open candidates are flushed instead).
template <typename RecvTop, typename PublishBottom>
void compute_band(const HeuristicKernel& kernel, const Sequence& s,
                  const Sequence& t, const BlockGrid& grid, std::size_t b,
                  CandidateSink& sink, RecvTop&& recv_top,
                  PublishBottom&& publish_bottom) {
  const std::size_t row_lo = grid.row_offsets[b];  // 0-based
  const std::size_t H = grid.band_height(b);
  const std::size_t K = grid.blocks();
  const bool last_band = (b + 1 == grid.bands());
  const CellInfo zero{};

  // Right edge of the previous block: [0] is the diagonal input for the
  // first row, [r] the left input for row r.  Column 0 is all zeros.
  std::vector<CellInfo> left_edge(H + 1, zero);
  std::vector<CellInfo> top_row;
  std::vector<CellInfo> prev_row;
  std::vector<CellInfo> cur_row;

  for (std::size_t k = 0; k < K; ++k) {
    const std::size_t col_lo = grid.col_offsets[k];  // 0-based
    const std::size_t W = grid.block_width(k);

    top_row.assign(W, zero);
    if (b > 0) recv_top(k, std::span<CellInfo>(top_row));

    prev_row = top_row;
    const std::span<const Base> t_cols = t.bases().subspan(col_lo, W);
    cur_row.assign(W, zero);
    std::vector<CellInfo> new_edge(H + 1, zero);
    new_edge[0] = top_row.back();

    for (std::size_t r = 1; r <= H; ++r) {
      const std::size_t row = row_lo + r;  // 1-based matrix row
      kernel.process_row_segment(s[row - 1], static_cast<std::uint32_t>(row),
                                 t_cols, static_cast<std::uint32_t>(col_lo + 1),
                                 prev_row, left_edge[r - 1], left_edge[r],
                                 cur_row, sink);
      new_edge[r] = cur_row.back();
      std::swap(prev_row, cur_row);
    }
    left_edge = std::move(new_edge);

    if (!last_band) {
      publish_bottom(k, std::span<const CellInfo>(prev_row));
    } else {
      // Bottom row of the whole matrix: flush still-open candidates.
      for (const CellInfo& cell : prev_row) sink.flush_open(cell);
    }
  }
}

}  // namespace gdsm::core
