#include "core/blocked_mp.h"

#include <cstring>
#include <vector>

#include "core/band_compute.h"
#include "mp/comm.h"

namespace gdsm::core {
namespace {

// One tag per (band, block) boundary handoff; tags must be non-negative to
// stay clear of the collective tags.
int boundary_tag(std::size_t band, std::size_t blocks, std::size_t k) {
  return static_cast<int>(band * blocks + k);
}

}  // namespace

MpStrategyResult blocked_align_mp(const Sequence& s, const Sequence& t,
                                  const BlockedConfig& cfg) {
  const int P = cfg.nprocs;
  const std::size_t m = s.size();
  const std::size_t n = t.size();

  MpStrategyResult result;
  if (m == 0 || n == 0) return result;

  const BlockGrid grid =
      (cfg.bands && cfg.blocks)
          ? make_grid(m, n, cfg.bands, cfg.blocks)
          : grid_from_multiplier(m, n, P, cfg.mult_w, cfg.mult_h);
  const std::size_t B = grid.bands();
  const std::size_t K = grid.blocks();

  const HeuristicKernel kernel(cfg.scheme, cfg.params);
  mp::World world(P, cfg.dsm.faults);
  std::vector<Candidate> merged;

  world.run([&](mp::Comm& comm) {
    const int p = comm.rank();
    comm.barrier();

    CandidateSink sink(cfg.params);
    for (std::size_t b = static_cast<std::size_t>(p); b < B;
         b += static_cast<std::size_t>(P)) {
      const int prev_owner = static_cast<int>((b - 1) % static_cast<std::size_t>(P));
      const int next_owner = static_cast<int>((b + 1) % static_cast<std::size_t>(P));
      compute_band(
          kernel, s, t, grid, b, sink,
          // Top boundary: receive the segment from band b-1's owner.
          [&](std::size_t k, std::span<CellInfo> out) {
            const auto payload =
                comm.recv_vector<CellInfo>(prev_owner, boundary_tag(b - 1, K, k));
            if (payload.size() != out.size()) {
              throw std::runtime_error("blocked_align_mp: boundary size mismatch");
            }
            std::memcpy(out.data(), payload.data(),
                        payload.size() * sizeof(CellInfo));
          },
          // Bottom boundary: send the segment to band b+1's owner.
          [&](std::size_t k, std::span<const CellInfo> bottom) {
            comm.send_span(next_owner, boundary_tag(b, K, k), bottom.data(),
                           bottom.size());
          });
    }

    // Gather the per-rank queues at rank 0 and finalize.
    const std::vector<Candidate>& local = sink.queue();
    const auto gathered = comm.gather(
        0, local.data(), local.size() * sizeof(Candidate));
    if (p == 0) {
      for (const auto& bytes : gathered) {
        const std::size_t count = bytes.size() / sizeof(Candidate);
        const std::size_t old = merged.size();
        merged.resize(old + count);
        if (count > 0) {
          std::memcpy(merged.data() + old, bytes.data(), bytes.size());
        }
      }
      finalize_candidates(merged);
    }
    comm.barrier();
  });

  result.candidates = std::move(merged);
  result.traffic = world.total_counters();
  result.faults = world.fault_counters();
  return result;
}

}  // namespace gdsm::core
