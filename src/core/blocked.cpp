#include "core/blocked.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/band_compute.h"
#include "core/partition.h"
#include "core/result_gather.h"
#include "dsm/cluster.h"

namespace gdsm::core {

StrategyResult blocked_align(const Sequence& s, const Sequence& t,
                             const BlockedConfig& cfg) {
  const int P = cfg.nprocs;
  const std::size_t m = s.size();
  const std::size_t n = t.size();

  StrategyResult result;
  if (m == 0 || n == 0) return result;

  const BlockGrid grid =
      (cfg.bands && cfg.blocks)
          ? make_grid(m, n, cfg.bands, cfg.blocks)
          : grid_from_multiplier(m, n, P, cfg.mult_w, cfg.mult_h);
  const std::size_t B = grid.bands();

  std::unique_ptr<dsm::Cluster> owned;
  dsm::Cluster* cl = cfg.cluster;
  if (cl == nullptr) {
    dsm::DsmConfig dsm_cfg = cfg.dsm;
    dsm_cfg.n_cvs = std::max<int>(dsm_cfg.n_cvs, static_cast<int>(B) + 1);
    owned = std::make_unique<dsm::Cluster>(P, dsm_cfg);
    cl = owned.get();
  } else {
    if (cl->nodes() != P) {
      throw std::invalid_argument(
          "blocked_align: external cluster size != nprocs");
    }
    if (cl->config().n_cvs < static_cast<int>(B) + 1) {
      throw std::invalid_argument(
          "blocked_align: external cluster has too few cvs for " +
          std::to_string(B) + " bands");
    }
  }
  if (cfg.resident_t_size != 0 && cfg.resident_t_size != n) {
    throw std::invalid_argument(
        "blocked_align: resident subject size != t.size()");
  }
  dsm::Cluster& cluster = *cl;

  // Bottom-row boundary of every band, homed at the band's owner so the
  // producer writes locally and the consumer page-faults it in per block.
  std::vector<dsm::SharedArray<CellInfo>> boundary;
  boundary.reserve(B);
  for (std::size_t b = 0; b < B; ++b) {
    boundary.emplace_back(
        cluster.alloc(n * sizeof(CellInfo), grid.band_owner(b, P)), n);
  }
  const CandidateGather gather(cluster, P, cfg.max_candidates_per_node);

  const HeuristicKernel kernel(cfg.scheme, cfg.params);
  std::atomic<bool> overflow{false};
  std::vector<Candidate> merged;

  // submit/await (rather than run + stats()) so the per-job node counters
  // cannot be confused with a neighbouring job's on a shared service cluster.
  const dsm::Cluster::Ticket ticket = cluster.submit([&](dsm::Node& node) {
    const int p = node.id();
    node.barrier();

    // When the service keeps the subject resident in global memory, each
    // node pulls its own copy through the DSM (cold = page faults, warm =
    // local cache hits) instead of reading host memory.
    Sequence t_resident;
    if (cfg.resident_t_size != 0) {
      std::basic_string<Base> bases(n, Base{});
      node.read_bytes(cfg.resident_t_addr,
                      reinterpret_cast<std::byte*>(bases.data()),
                      n * sizeof(Base));
      t_resident = Sequence(t.name(), std::move(bases));
    }
    const Sequence& t_local = cfg.resident_t_size != 0 ? t_resident : t;

    CandidateSink sink(cfg.params);

    for (std::size_t b = static_cast<std::size_t>(p); b < B;
         b += static_cast<std::size_t>(P)) {
      compute_band(
          kernel, s, t_local, grid, b, sink,
          // Top boundary: wait for the producer's signal, then fault the
          // shared segment in.
          [&](std::size_t k, std::span<CellInfo> out) {
            node.waitcv(static_cast<int>(b - 1));
            boundary[b - 1].get_range(node, grid.col_offsets[k], out.size(),
                                      out.data());
          },
          // Bottom boundary: publish (home write) and wake the next owner.
          [&](std::size_t k, std::span<const CellInfo> bottom) {
            boundary[b].put_range(node, grid.col_offsets[k], bottom.size(),
                                  bottom.data());
            node.setcv(static_cast<int>(b));
          });
    }

    std::vector<Candidate> local = std::move(sink.queue());
    if (!gather.publish(node, local)) overflow.store(true);
    node.barrier();
    if (p == 0) merged = gather.collect(node);
  });

  result.dsm_stats = cluster.await(ticket);
  result.candidates = std::move(merged);
  result.overflow = overflow.load();
  return result;
}

}  // namespace gdsm::core
