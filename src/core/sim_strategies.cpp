#include "core/sim_strategies.h"

#include <algorithm>
#include <cmath>

#include "core/partition.h"
#include "util/rng.h"

namespace gdsm::core {
namespace {

using sim::Cat;
using sim::ClusterSim;
using sim::CostModel;

// jia_barrier (Fig. 6): every node sends BARR to the owner (node 0), which
// serializes the write-notice bookkeeping and broadcasts BARRGRANT.
void sim_barrier(ClusterSim& cs, Cat cat) {
  const CostModel& cm = cs.cost();
  const int P = cs.nodes();
  double all_done = 0;
  for (int p = 0; p < P; ++p) {
    const double done = cs.send_async(p, 0, 64, cat);
    all_done = std::max(all_done, done);
  }
  for (int p = 0; p < P; ++p) {
    const double grant = p == 0 ? all_done : all_done + cm.msg_latency_s;
    cs.wait_until(p, grant, cat);
    cs.busy(p, cm.proto_op_s, cat);  // consume the grant, apply notices
  }
}

// Fetching `bytes` of freshly-invalidated shared data from `home`: one
// GETPAGE round trip per page, as the SVM faults them in.
void sim_fetch(ClusterSim& cs, int node, int home, std::size_t bytes, Cat cat) {
  const CostModel& cm = cs.cost();
  const std::size_t pages = std::max<std::size_t>(1, (bytes + cm.page_bytes - 1) / cm.page_bytes);
  for (std::size_t k = 0; k < pages; ++k) {
    cs.rpc(node, home, 8, cm.page_bytes, cat);
  }
}

SimReport finish(ClusterSim& cs, const CostModel& cm, bool with_dsm = true) {
  SimReport rep;
  rep.core_s = cs.makespan();
  // Serial runs have no DSM environment to start or tear down.
  rep.total_s = rep.core_s + (with_dsm ? cm.init_time_s + cm.term_time_s : 0.0);
  rep.average = cs.average_breakdown();
  rep.per_node.reserve(static_cast<std::size_t>(cs.nodes()));
  for (int p = 0; p < cs.nodes(); ++p) rep.per_node.push_back(cs.breakdown(p));
  return rep;
}

}  // namespace

SimReport sim_wavefront(std::size_t m, std::size_t n, int P,
                        const CostModel& cm) {
  ClusterSim cs(P, cm);

  if (P == 1) {
    // Serial program: two linear arrays, no DSM at all.
    const double cell =
        cm.effective_cell(cm.cell_s_heuristic, 2 * n * cm.heuristic_cell_bytes);
    cs.busy(0, static_cast<double>(m) * static_cast<double>(n) * cell,
            Cat::kCompute);
    return finish(cs, cm, /*with_dsm=*/false);
  }

  sim_barrier(cs, Cat::kBarrier);

  std::vector<std::size_t> width(static_cast<std::size_t>(P));
  std::vector<double> cell(static_cast<std::size_t>(P));
  for (int p = 0; p < P; ++p) {
    width[static_cast<std::size_t>(p)] = column_range(n, P, p).width();
    // Rows live in shared memory; every cell pays the DSM write-check and
    // row-copy overhead on top of the locality-dependent base cost.
    cell[static_cast<std::size_t>(p)] =
        cm.effective_cell(cm.cell_s_heuristic,
                          2 * width[static_cast<std::size_t>(p)] *
                              cm.heuristic_cell_bytes) *
        (1.0 + cm.dsm_write_factor);
  }

  // signal_done[p]: manager-side completion of the last data_ready signal of
  // pair p; ack_done[p]: completion of the last slot_free ack of pair p.
  std::vector<double> signal_done(static_cast<std::size_t>(P), 0.0);
  std::vector<double> ack_done(static_cast<std::size_t>(P), 0.0);

  for (std::size_t i = 1; i <= m; ++i) {
    for (int p = 0; p < P; ++p) {
      const auto up = static_cast<std::size_t>(p);
      if (p > 0) {
        // waitcv(data_ready): cv of pair p-1 is managed by node p-1.
        cs.rpc(p, p - 1, 8, 16, Cat::kLockCv, signal_done[up - 1]);
        // The border page was invalidated by the signal's write notice;
        // fault it back in from its home (the producer).
        sim_fetch(cs, p, p - 1, sizeof(std::uint64_t) * 7, Cat::kComm);
        // setcv(slot_free): release the one-cell buffer back to the writer.
        ack_done[up - 1] = cs.send_async(p, p - 1, 16, Cat::kLockCv);
      }
      cs.busy(p, static_cast<double>(width[up]) * cell[up], Cat::kCompute);
      if (p + 1 < P) {
        if (i > 1) {
          // waitcv(slot_free): managed locally (cv id == pair == this node).
          cs.rpc(p, p, 8, 16, Cat::kLockCv, ack_done[up]);
        }
        // Border cell write is a home write; publishing happens via the
        // signal, whose notice invalidates the reader's copy.
        signal_done[up] = cs.send_async(p, p, 24, Cat::kLockCv);
      }
    }
  }

  sim_barrier(cs, Cat::kBarrier);
  return finish(cs, cm);
}

SimReport sim_blocked(std::size_t m, std::size_t n, int P, std::size_t bands,
                      std::size_t blocks, const CostModel& cm) {
  ClusterSim cs(P, cm);
  const BlockGrid grid = make_grid(m, n, bands, blocks);
  const std::size_t B = grid.bands();
  const std::size_t K = grid.blocks();

  if (P > 1) sim_barrier(cs, Cat::kBarrier);

  std::vector<std::vector<double>> signal_done(B, std::vector<double>(K, 0.0));

  for (std::size_t b = 0; b < B; ++b) {
    const int p = P > 1 ? grid.band_owner(b, P) : 0;
    const int prev_owner = b > 0 ? (P > 1 ? grid.band_owner(b - 1, P) : 0) : 0;
    const std::size_t H = grid.band_height(b);
    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t W = grid.block_width(k);
      if (b > 0 && P > 1) {
        // waitcv on band b-1's cv (managed by its owner), then fault in the
        // boundary segment.
        cs.rpc(p, prev_owner, 8, 16, Cat::kLockCv, signal_done[b - 1][k]);
        sim_fetch(cs, p, prev_owner, W * cm.heuristic_cell_bytes, Cat::kComm);
      }
      const double cell =
          cm.effective_cell(cm.cell_s_heuristic, 2 * W * cm.heuristic_cell_bytes);
      cs.busy(p, static_cast<double>(H) * static_cast<double>(W) * cell,
              Cat::kCompute);
      if (b + 1 < B && P > 1) {
        // Publish the bottom row (home write) and signal band b's cv, which
        // this node manages itself.
        signal_done[b][k] = cs.send_async(p, p, 24, Cat::kLockCv);
      }
    }
  }

  if (P > 1) sim_barrier(cs, Cat::kBarrier);
  return finish(cs, cm, /*with_dsm=*/P > 1);
}

SimReport sim_blocked_mp(std::size_t m, std::size_t n, int P,
                         std::size_t bands, std::size_t blocks,
                         const CostModel& cm) {
  ClusterSim cs(P, cm);
  const BlockGrid grid = make_grid(m, n, bands, blocks);
  const std::size_t B = grid.bands();
  const std::size_t K = grid.blocks();

  if (P > 1) sim_barrier(cs, Cat::kBarrier);

  std::vector<std::vector<double>> ready(B, std::vector<double>(K, 0.0));

  for (std::size_t b = 0; b < B; ++b) {
    const int p = P > 1 ? grid.band_owner(b, P) : 0;
    const std::size_t H = grid.band_height(b);
    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t W = grid.block_width(k);
      if (b > 0 && P > 1) {
        // Eager receive: block until the boundary message has arrived.
        cs.wait_until(p, ready[b - 1][k], Cat::kComm);
        cs.busy(p, cm.proto_op_s, Cat::kComm);  // recv-side copy
      }
      const double cell =
          cm.effective_cell(cm.cell_s_heuristic, 2 * W * cm.heuristic_cell_bytes);
      cs.busy(p, static_cast<double>(H) * static_cast<double>(W) * cell,
              Cat::kCompute);
      if (b + 1 < B && P > 1) {
        // Send cost + wire time of one message carrying W cells.
        const std::size_t bytes = W * cm.heuristic_cell_bytes;
        cs.busy(p, cm.proto_op_s + bytes * cm.wire_s_per_byte, Cat::kComm);
        ready[b][k] = cs.now(p) + cm.msg_latency_s;
      }
    }
  }

  if (P > 1) sim_barrier(cs, Cat::kBarrier);
  return finish(cs, cm, /*with_dsm=*/P > 1);
}

SimReport sim_preprocess(std::size_t m, std::size_t n, int P,
                         const SimPreprocessOptions& opt, const CostModel& cm) {
  ClusterSim cs(P, cm);
  const std::vector<std::size_t> rows = band_offsets(m, P, opt.band_scheme,
                                                     opt.band_rows);
  const std::vector<std::size_t> cols =
      chunk_offsets(n, opt.chunk_cols, opt.chunk_growth);
  const std::size_t B = rows.size() - 1;
  const std::size_t C = cols.size() - 1;

  if (P > 1) sim_barrier(cs, Cat::kBarrier);

  std::vector<std::vector<double>> signal_done(B, std::vector<double>(C, 0.0));
  std::vector<std::size_t> deferred_bytes(static_cast<std::size_t>(P), 0);

  for (std::size_t b = 0; b < B; ++b) {
    const int p = static_cast<int>(b % static_cast<std::size_t>(P));
    const int prev_owner =
        b > 0 ? static_cast<int>((b - 1) % static_cast<std::size_t>(P)) : 0;
    const std::size_t H = rows[b + 1] - rows[b];
    // Column-major processing: the working set is two column arrays.
    const double cell =
        cm.effective_cell(cm.cell_s_plain, 2 * H * cm.plain_cell_bytes);

    for (std::size_t c = 0; c < C; ++c) {
      const std::size_t W = cols[c + 1] - cols[c];
      if (b > 0 && P > 1 && p != prev_owner) {
        cs.rpc(p, prev_owner, 8, 16, Cat::kLockCv, signal_done[b - 1][c]);
        sim_fetch(cs, p, prev_owner, W * cm.plain_cell_bytes, Cat::kComm);
      } else if (b > 0 && P == 1) {
        // Single node: the passage row is local; no protocol.
      }
      cs.busy(p, static_cast<double>(H) * static_cast<double>(W) * cell,
              Cat::kCompute);

      if (opt.save_interleave != 0 && opt.io_mode != IoMode::kNone) {
        // Columns j in this chunk with j % ip == 0.
        const std::size_t lo = cols[c] + 1, hi = cols[c + 1];
        const std::size_t saved = hi / opt.save_interleave -
                                  (lo - 1) / opt.save_interleave;
        const std::size_t bytes = saved * H * cm.plain_cell_bytes;
        if (opt.io_mode == IoMode::kImmediate && saved > 0) {
          cs.busy(p, static_cast<double>(saved) * cm.disk_latency_s +
                         static_cast<double>(bytes) * cm.disk_s_per_byte,
                  Cat::kIo);
        } else if (opt.io_mode == IoMode::kDeferred) {
          deferred_bytes[static_cast<std::size_t>(p)] += bytes;
        }
      }

      if (b + 1 < B && P > 1) {
        signal_done[b][c] = cs.send_async(p, p, 24, Cat::kLockCv);
      }
    }
  }

  if (opt.io_mode == IoMode::kDeferred) {
    // Deferred drains into the NFS buffer cache at memory speed (the actual
    // disk write overlaps the termination phase).
    for (int p = 0; p < P; ++p) {
      const std::size_t bytes = deferred_bytes[static_cast<std::size_t>(p)];
      if (bytes > 0) {
        cs.busy(p, cm.disk_latency_s +
                       static_cast<double>(bytes) * cm.buffer_cache_s_per_byte,
                Cat::kIo);
      }
    }
  }

  if (P > 1) sim_barrier(cs, Cat::kBarrier);
  return finish(cs, cm, /*with_dsm=*/P > 1);
}

std::vector<std::pair<std::size_t, std::size_t>> phase2_pair_sizes(
    std::size_t count, std::size_t mean, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<std::size_t, std::size_t>> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Sizes fluctuate around the mean; both members of a pair are similar
    // lengths (they align to each other).
    const std::size_t base = mean / 2 + rng.below(mean);
    const std::size_t a = base + rng.below(std::max<std::size_t>(mean / 8, 1));
    const std::size_t b = base + rng.below(std::max<std::size_t>(mean / 8, 1));
    out.emplace_back(a, b);
  }
  return out;
}

SimReport sim_phase2(const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
                     int P, const CostModel& cm) {
  ClusterSim cs(P, cm);
  auto pair_cost = [&](const std::pair<std::size_t, std::size_t>& pr) {
    return static_cast<double>(pr.first) * static_cast<double>(pr.second) *
           cm.cell_s_nw;
  };

  if (P == 1) {
    for (const auto& pr : pairs) cs.busy(0, pair_cost(pr), Cat::kCompute);
    return finish(cs, cm, /*with_dsm=*/false);
  }

  sim_barrier(cs, Cat::kBarrier);

  // The shared queue and result vector are read/written with scattered
  // mapping; a node faults a queue page roughly every page/record pairs.
  const double record_bytes = 24.0;
  const double faults_per_pair =
      record_bytes / static_cast<double>(cm.page_bytes);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const int p = static_cast<int>(i % static_cast<std::size_t>(P));
    // Amortized queue page fetch from node 0 (its home).
    cs.busy(p, faults_per_pair * (2 * cm.msg_latency_s + 2 * cm.proto_op_s +
                                  cm.page_bytes * cm.wire_s_per_byte),
            Cat::kComm);
    cs.busy(p, pair_cost(pairs[i]), Cat::kCompute);
    // Result slot write: twin + diff amortized over a page of records.
    cs.busy(p, faults_per_pair * (2 * cm.proto_op_s + 2 * cm.msg_latency_s),
            Cat::kComm);
  }

  sim_barrier(cs, Cat::kBarrier);
  return finish(cs, cm);
}

}  // namespace gdsm::core
