// Strategy 2 (Section 4.3): parallel heuristic local alignment WITH
// blocking factors.
//
// The similarity matrix is divided into `bands` (sets of rows, assigned
// round-robin to processors) and each band into `blocks` (sets of columns).
// A processor computes its band block by block, left to right; after
// finishing block (b, k) it publishes the block's bottom row and signals the
// owner of band b+1, which may then compute block (b+1, k).  Grouping a
// whole block row into one communication is what removes the per-cell
// handshake cost of Strategy 1.
//
// A "w x h blocking multiplier" divides the matrix into h*P bands of w*P
// blocks (Table 3 explores the multiplier space).
#pragma once

#include <cstddef>

#include "core/strategy_result.h"
#include "dsm/config.h"
#include "dsm/global_space.h"
#include "sw/heuristic_scan.h"
#include "util/sequence.h"

namespace gdsm::dsm {
class Cluster;
}

namespace gdsm::core {

struct BlockedConfig {
  int nprocs = 4;
  /// Blocking multiplier (bands = mult_h * P, blocks = mult_w * P).  Used
  /// when bands/blocks are left at 0.
  std::size_t mult_w = 5;
  std::size_t mult_h = 5;
  /// Explicit decomposition (overrides the multiplier when nonzero).
  std::size_t bands = 0;
  std::size_t blocks = 0;
  ScoreScheme scheme{};
  HeuristicParams params{};
  std::size_t max_candidates_per_node = 1u << 16;
  dsm::DsmConfig dsm{};
  /// Caller-owned persistent cluster to run on (the alignment service's
  /// node pool).  Must have exactly `nprocs` nodes and a config with
  /// n_cvs >= bands + 1.  When null, a private cluster is built from
  /// `dsm` and torn down with the call.
  dsm::Cluster* cluster = nullptr;
  /// Subject residency: when `resident_t_size` is nonzero (it must then
  /// equal t.size()), each node fetches the whole subject through the DSM
  /// from `resident_t_addr` before computing — cold queries page-fault it
  /// in, warm ones hit the local cache.
  dsm::GlobalAddr resident_t_addr = 0;
  std::size_t resident_t_size = 0;
};

/// Runs the blocked heuristic strategy on a threaded DSM cluster.  Produces
/// exactly the heuristic_scan(s, t, ...) candidate queue.
StrategyResult blocked_align(const Sequence& s, const Sequence& t,
                             const BlockedConfig& cfg = {});

}  // namespace gdsm::core
