// Strategy 2 (Section 4.3): parallel heuristic local alignment WITH
// blocking factors.
//
// The similarity matrix is divided into `bands` (sets of rows, assigned
// round-robin to processors) and each band into `blocks` (sets of columns).
// A processor computes its band block by block, left to right; after
// finishing block (b, k) it publishes the block's bottom row and signals the
// owner of band b+1, which may then compute block (b+1, k).  Grouping a
// whole block row into one communication is what removes the per-cell
// handshake cost of Strategy 1.
//
// A "w x h blocking multiplier" divides the matrix into h*P bands of w*P
// blocks (Table 3 explores the multiplier space).
#pragma once

#include <cstddef>

#include "core/strategy_result.h"
#include "dsm/config.h"
#include "sw/heuristic_scan.h"
#include "util/sequence.h"

namespace gdsm::core {

struct BlockedConfig {
  int nprocs = 4;
  /// Blocking multiplier (bands = mult_h * P, blocks = mult_w * P).  Used
  /// when bands/blocks are left at 0.
  std::size_t mult_w = 5;
  std::size_t mult_h = 5;
  /// Explicit decomposition (overrides the multiplier when nonzero).
  std::size_t bands = 0;
  std::size_t blocks = 0;
  ScoreScheme scheme{};
  HeuristicParams params{};
  std::size_t max_candidates_per_node = 1u << 16;
  dsm::DsmConfig dsm{};
};

/// Runs the blocked heuristic strategy on a threaded DSM cluster.  Produces
/// exactly the heuristic_scan(s, t, ...) candidate queue.
StrategyResult blocked_align(const Sequence& s, const Sequence& t,
                             const BlockedConfig& cfg = {});

}  // namespace gdsm::core
