// Json views of the strategy-level result types, for the run reports the
// bench binaries emit (docs/METRICS.md).
//
// SimReport carries the paper's Fig. 10 phase breakdown (computation /
// communication / lock+cv / barrier / io); StrategyResult and
// ExactParallelResult carry the real threaded runs' DSM / wire counters.
#pragma once

#include "core/exact_parallel.h"
#include "core/sim_strategies.h"
#include "core/strategy_result.h"
#include "obs/json.h"

namespace gdsm::core {

/// {core_s, total_s, breakdown: {...}, per_node?: [breakdown...]}.
/// `per_node` (one breakdown per simulated node) is included on request —
/// most tables only need the per-node average the paper plots.
obs::Json sim_report_json(const SimReport& rep, bool per_node = false);

/// {candidates, overflow, dsm: <DsmStats snapshot>} of a threaded phase-1
/// strategy run.  Candidate coordinates are summarized, not dumped: reports
/// capture performance shape, alignments stay in the program output.
obs::Json strategy_result_json(const StrategyResult& r);

/// {score, s_begin, s_end, t_begin, t_end, computed_cells, traffic, faults}
/// of a distributed Section 6 exact retrieval.
obs::Json exact_result_json(const ExactParallelResult& r);

}  // namespace gdsm::core
