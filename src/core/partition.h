// Work-partition helpers shared by the threaded strategies and their
// simulator twins, so both sides agree exactly on who computes what.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace gdsm::core {

/// Contiguous 1-based column range [begin, end] owned by one processor when
/// N columns are split over P processors (Section 4.2's "each processor is
/// assigned N/P columns"; remainders go to the leading processors).
struct ColumnRange {
  std::size_t begin = 1;  ///< 1-based, inclusive
  std::size_t end = 0;    ///< 1-based, inclusive; end < begin means empty
  std::size_t width() const noexcept { return end + 1 - begin; }
  bool empty() const noexcept { return end < begin; }
};

inline ColumnRange column_range(std::size_t n, int nprocs, int p) {
  if (nprocs <= 0 || p < 0 || p >= nprocs) {
    throw std::invalid_argument("column_range: bad processor index");
  }
  const std::size_t q = n / static_cast<std::size_t>(nprocs);
  const std::size_t r = n % static_cast<std::size_t>(nprocs);
  const auto up = static_cast<std::size_t>(p);
  const std::size_t begin = up * q + std::min<std::size_t>(up, r);
  const std::size_t width = q + (up < r ? 1 : 0);
  return ColumnRange{begin + 1, begin + width};
}

/// Splits `total` items into `parts` nearly equal contiguous chunks;
/// chunk k covers [offsets[k], offsets[k+1]) 0-based.
inline std::vector<std::size_t> split_offsets(std::size_t total, std::size_t parts) {
  if (parts == 0) throw std::invalid_argument("split_offsets: zero parts");
  std::vector<std::size_t> offs(parts + 1);
  const std::size_t q = total / parts;
  const std::size_t r = total % parts;
  std::size_t pos = 0;
  for (std::size_t k = 0; k < parts; ++k) {
    offs[k] = pos;
    pos += q + (k < r ? 1 : 0);
  }
  offs[parts] = total;
  return offs;
}

/// Band/block decomposition of Section 4.3: the m x n matrix is divided into
/// `bands` row sets (assigned round-robin to processors) and each band into
/// `blocks` column sets.  A "w x h blocking multiplier" for P processors
/// yields bands = h*P and blocks = w*P (the paper's example: 3x5 with 8
/// processors -> 40 bands of 24 blocks).
struct BlockGrid {
  std::vector<std::size_t> row_offsets;  ///< bands+1 entries, 0-based
  std::vector<std::size_t> col_offsets;  ///< blocks+1 entries, 0-based

  std::size_t bands() const noexcept { return row_offsets.size() - 1; }
  std::size_t blocks() const noexcept { return col_offsets.size() - 1; }
  std::size_t band_height(std::size_t b) const {
    return row_offsets[b + 1] - row_offsets[b];
  }
  std::size_t block_width(std::size_t k) const {
    return col_offsets[k + 1] - col_offsets[k];
  }
  int band_owner(std::size_t b, int nprocs) const {
    return static_cast<int>(b % static_cast<std::size_t>(nprocs));
  }
};

inline BlockGrid make_grid(std::size_t m, std::size_t n, std::size_t bands,
                           std::size_t blocks) {
  if (bands == 0 || blocks == 0) {
    throw std::invalid_argument("make_grid: zero bands/blocks");
  }
  bands = std::min(bands, m ? m : 1);
  blocks = std::min(blocks, n ? n : 1);
  return BlockGrid{split_offsets(m, bands), split_offsets(n, blocks)};
}

inline BlockGrid grid_from_multiplier(std::size_t m, std::size_t n, int nprocs,
                                      std::size_t mult_w, std::size_t mult_h) {
  return make_grid(m, n, mult_h * static_cast<std::size_t>(nprocs),
                   mult_w * static_cast<std::size_t>(nprocs));
}

}  // namespace gdsm::core
