// Strategy 1 (Section 4.2): parallel heuristic local alignment WITHOUT
// blocking factors.
//
// Work is assigned on a column basis: each processor owns N/P contiguous
// columns and keeps two private rows (reading/writing).  Parallelism follows
// the wave-front: processor p+1 may compute row i of its columns only after
// processor p has produced the border cell (i, last column of p).  Each
// border cell is passed *individually* through a one-slot shared buffer with
// a condition-variable handshake:
//
//   writer p:  [wait slot_free]  write border cell  signal data_ready
//   reader p+1: wait data_ready  read border cell   signal slot_free
//
// Barriers are used only at the beginning and the end of the computation.
#pragma once

#include "core/strategy_result.h"
#include "dsm/config.h"
#include "dsm/global_space.h"
#include "sw/heuristic_scan.h"
#include "util/sequence.h"

namespace gdsm::dsm {
class Cluster;
}

namespace gdsm::core {

struct WavefrontConfig {
  int nprocs = 4;
  ScoreScheme scheme{};
  HeuristicParams params{};
  /// Capacity of each node's shared result buffer.
  std::size_t max_candidates_per_node = 1u << 16;
  /// Paper-literal mode: the two linear arrays live in SHARED memory (homed
  /// at their node) and the writing row is copied onto the reading row after
  /// every row, exactly as Section 4.2 describes.  Functionally identical to
  /// the default (which keeps the rows node-local and swaps buffers), but
  /// every cell goes through the DSM write path — the overhead the
  /// simulator's dsm_write_factor models.
  bool rows_in_shared_memory = false;
  dsm::DsmConfig dsm{};
  /// Caller-owned persistent cluster to run on (the alignment service's
  /// node pool).  Must have exactly `nprocs` nodes and a config with
  /// n_cvs >= 2*nprocs + 2.  When null, a private cluster is built from
  /// `dsm` and torn down with the call.
  dsm::Cluster* cluster = nullptr;
  /// Subject residency: when `resident_t_size` is nonzero (it must then
  /// equal t.size()), the subject lives in the cluster's global space at
  /// `resident_t_addr` (seeded with Cluster::host_write, kept warm with
  /// retain_range) and each node fetches its column slice through the DSM
  /// — cold queries page-fault it in, warm ones hit the local cache.
  dsm::GlobalAddr resident_t_addr = 0;
  std::size_t resident_t_size = 0;
};

/// Runs the non-blocked heuristic strategy on a threaded DSM cluster.
/// The candidate queue is identical to heuristic_scan(s, t, ...) — the
/// parallelization changes only who computes which cell.
StrategyResult wavefront_align(const Sequence& s, const Sequence& t,
                               const WavefrontConfig& cfg = {});

}  // namespace gdsm::core
