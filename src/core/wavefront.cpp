#include "core/wavefront.h"

#include <atomic>
#include <cassert>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/partition.h"
#include "core/result_gather.h"
#include "dsm/cluster.h"

namespace gdsm::core {
namespace {

// Condition-variable identifiers for the pairwise handshakes.  Pair p is the
// channel from processor p to processor p+1.
int cv_data_ready(int pair) { return pair; }
int cv_slot_free(int nprocs, int pair) { return nprocs + pair; }

}  // namespace

StrategyResult wavefront_align(const Sequence& s, const Sequence& t,
                               const WavefrontConfig& cfg) {
  const int P = cfg.nprocs;
  const std::size_t m = s.size();
  const std::size_t n = t.size();

  std::unique_ptr<dsm::Cluster> owned;
  dsm::Cluster* cl = cfg.cluster;
  if (cl == nullptr) {
    dsm::DsmConfig dsm_cfg = cfg.dsm;
    dsm_cfg.n_cvs = std::max(dsm_cfg.n_cvs, 2 * P + 2);
    owned = std::make_unique<dsm::Cluster>(P, dsm_cfg);
    cl = owned.get();
  } else {
    if (cl->nodes() != P) {
      throw std::invalid_argument(
          "wavefront_align: external cluster size != nprocs");
    }
    if (cl->config().n_cvs < 2 * P + 2) {
      throw std::invalid_argument(
          "wavefront_align: external cluster has too few cvs");
    }
  }
  if (cfg.resident_t_size != 0 && cfg.resident_t_size != n) {
    throw std::invalid_argument(
        "wavefront_align: resident subject size != t.size()");
  }
  dsm::Cluster& cluster = *cl;

  // One border slot per processor pair, each on its own page homed at the
  // writer so publishing the cell is a local write.
  std::vector<dsm::GlobalAddr> border(P > 1 ? static_cast<std::size_t>(P - 1) : 0);
  for (int p = 0; p + 1 < P; ++p) {
    border[static_cast<std::size_t>(p)] =
        cluster.alloc(sizeof(CellInfo), /*home=*/p);
  }
  // Paper-literal mode: per-node shared reading/writing rows.
  std::vector<dsm::SharedArray<CellInfo>> shared_reading, shared_writing;
  if (cfg.rows_in_shared_memory) {
    for (int p = 0; p < P; ++p) {
      const std::size_t width = column_range(n, P, p).width();
      const std::size_t bytes = std::max<std::size_t>(width, 1) * sizeof(CellInfo);
      shared_reading.emplace_back(cluster.alloc(bytes, p), width);
      shared_writing.emplace_back(cluster.alloc(bytes, p), width);
    }
  }
  const CandidateGather gather(cluster, P, cfg.max_candidates_per_node);

  const HeuristicKernel kernel(cfg.scheme, cfg.params);
  std::atomic<bool> overflow{false};
  std::vector<Candidate> merged;

  // submit/await (rather than run + stats()) so the per-job node counters
  // cannot be confused with a neighbouring job's on a shared service cluster.
  const dsm::Cluster::Ticket ticket = cluster.submit([&](dsm::Node& node) {
    const int p = node.id();
    node.barrier();  // start-of-computation barrier

    const ColumnRange range = column_range(n, P, p);
    const std::size_t width = range.width();
    // Subject columns for this node: from the resident copy in global
    // memory when the service keeps one (cold = page faults, warm = cache
    // hits), otherwise straight from host memory as before.
    std::vector<Base> t_resident;
    std::span<const Base> t_cols;
    if (width > 0) {
      if (cfg.resident_t_size != 0) {
        t_resident.resize(width);
        node.read_bytes(cfg.resident_t_addr + (range.begin - 1) * sizeof(Base),
                        reinterpret_cast<std::byte*>(t_resident.data()),
                        width * sizeof(Base));
        t_cols = t_resident;
      } else {
        t_cols = t.bases().subspan(range.begin - 1, width);
      }
    }

    CandidateSink sink(cfg.params);
    std::vector<CellInfo> reading(width);  // previous row of this segment
    std::vector<CellInfo> writing(width);
    const CellInfo zero{};
    CellInfo prev_border{};  // cell (i-1, range.begin-1) from the left pair

    for (std::size_t i = 1; i <= m; ++i) {
      CellInfo left{};
      CellInfo diag{};
      if (p > 0) {
        node.waitcv(cv_data_ready(p - 1));
        left = node.read<CellInfo>(border[static_cast<std::size_t>(p - 1)]);
        node.setcv(cv_slot_free(P, p - 1));
        diag = prev_border;
        prev_border = left;
      }
      if (width > 0) {
        if (cfg.rows_in_shared_memory) {
          // Fetch the reading row from shared memory, compute, publish the
          // writing row back — Section 4.2's literal data layout.
          shared_reading[static_cast<std::size_t>(p)].get_range(node, 0, width,
                                                                reading.data());
        }
        kernel.process_row_segment(s[i - 1], static_cast<std::uint32_t>(i),
                                   t_cols, static_cast<std::uint32_t>(range.begin),
                                   reading, p > 0 ? diag : zero,
                                   p > 0 ? left : zero, writing, sink);
        if (cfg.rows_in_shared_memory) {
          shared_writing[static_cast<std::size_t>(p)].put_range(node, 0, width,
                                                                writing.data());
        }
      }
      if (p + 1 < P) {
        if (i > 1) node.waitcv(cv_slot_free(P, p));
        // Empty segments forward the value received from the left unchanged.
        const CellInfo out = width > 0 ? writing.back() : left;
        node.write(border[static_cast<std::size_t>(p)], out);
        node.setcv(cv_data_ready(p));
      }
      if (cfg.rows_in_shared_memory && width > 0) {
        // "When a processor finishes calculating a row, it copies this row
        // to the reading row": a shared-to-shared copy through the node.
        shared_writing[static_cast<std::size_t>(p)].get_range(node, 0, width,
                                                              writing.data());
        shared_reading[static_cast<std::size_t>(p)].put_range(node, 0, width,
                                                              writing.data());
      }
      std::swap(reading, writing);
    }
    // Candidates still open on the bottom row of the matrix.
    for (const CellInfo& cell : reading) sink.flush_open(cell);

    std::vector<Candidate> local = std::move(sink.queue());
    if (!gather.publish(node, local)) overflow.store(true);
    node.barrier();  // end-of-computation barrier
    if (p == 0) merged = gather.collect(node);
  });

  StrategyResult result;
  result.dsm_stats = cluster.await(ticket);
  result.candidates = std::move(merged);
  result.overflow = overflow.load();
  return result;
}

}  // namespace gdsm::core
