// Parallel exact alignment: Section 6's Algorithm 1 with its dominant cost
// (the linear-space score pass over the full matrix) parallelized.
//
// Section 7 lists running the Section 6 modification on clusters as
// immediate future work.  The score pass is a wave-front like any other SW
// scan, so it reuses the band/block decomposition of Strategy 2 — but cells
// are plain int32 scores (no candidate bookkeeping), boundaries are int32
// rows, and the only result is the best (score, end cell), combined with an
// all-reduce.  The cheap reverse rebuild (O(n'^2)) then runs on rank 0.
#pragma once

#include "core/partition.h"
#include "net/transport.h"
#include "sw/linear_score.h"
#include "sw/reverse_rebuild.h"
#include "util/sequence.h"

namespace gdsm::core {

struct ExactParallelConfig {
  int nprocs = 4;
  ScoreScheme scheme{};
  /// Band/block multipliers, as in BlockedConfig.
  std::size_t mult_w = 5;
  std::size_t mult_h = 5;
  std::size_t bands = 0;   ///< explicit override
  std::size_t blocks = 0;  ///< explicit override
  bool use_hirschberg = false;
  /// Simulated interconnect misbehaviour for the score pass (net/fault.h).
  net::FaultPlan faults{};
};

struct ExactParallelResult {
  BestLocal best;             ///< best score + end cell (1-based)
  RebuildResult rebuilt;      ///< the exact alignment (empty if score 0)
  net::TrafficCounters traffic;
  net::FaultCounters faults;  ///< injected-fault activity of the run
};

/// Finds the best local score in parallel over a message-passing cluster,
/// then rebuilds the exact alignment via the Section 6 reverse pass.
/// Equivalent to rebuild_best_local_alignment, distributed.
ExactParallelResult exact_align_parallel(const Sequence& s, const Sequence& t,
                                         const ExactParallelConfig& cfg = {});

}  // namespace gdsm::core
