#include "core/exact_parallel.h"

#include <cstring>
#include <vector>

#include "mp/comm.h"
#include "simd/dispatch.h"
#include "sw/full_matrix.h"
#include "sw/hirschberg.h"

namespace gdsm::core {
namespace {

// Lexicographically-first-of-maximum combiner: reproduces the row-major
// tie-breaking of the serial linear scan regardless of block scan order.
void consider(BestLocal& best, int score, std::size_t i, std::size_t j) {
  if (score > best.score ||
      (score == best.score && score > 0 &&
       (i < best.end_i || (i == best.end_i && j < best.end_j)))) {
    best = BestLocal{score, i, j};
  }
}

int boundary_tag(std::size_t band, std::size_t blocks, std::size_t k) {
  return static_cast<int>(band * blocks + k);
}

}  // namespace

ExactParallelResult exact_align_parallel(const Sequence& s, const Sequence& t,
                                         const ExactParallelConfig& cfg) {
  const int P = cfg.nprocs;
  const std::size_t m = s.size();
  const std::size_t n = t.size();

  ExactParallelResult result;
  if (m == 0 || n == 0) return result;

  const BlockGrid grid =
      (cfg.bands && cfg.blocks)
          ? make_grid(m, n, cfg.bands, cfg.blocks)
          : grid_from_multiplier(m, n, P, cfg.mult_w, cfg.mult_h);
  const std::size_t B = grid.bands();
  const std::size_t K = grid.blocks();

  mp::World world(P, cfg.faults);
  BestLocal global_best;
  const bool affine = cfg.scheme.affine();
  const simd::ScoreParams kernel_params{cfg.scheme.match, cfg.scheme.mismatch,
                                        cfg.scheme.gap, cfg.scheme.gap_open};

  world.run([&](mp::Comm& comm) {
    const int p = comm.rank();
    BestLocal local;

    std::vector<std::int32_t> top_row, bottom_row;
    std::vector<std::int32_t> top_e, bottom_e;  // affine E companions
    std::vector<std::int32_t> send_buf;
    for (std::size_t b = static_cast<std::size_t>(p); b < B;
         b += static_cast<std::size_t>(P)) {
      const std::size_t row_lo = grid.row_offsets[b];
      const std::size_t H = grid.band_height(b);
      const int prev_rank =
          b > 0 ? static_cast<int>((b - 1) % static_cast<std::size_t>(P)) : 0;
      const int next_rank =
          static_cast<int>((b + 1) % static_cast<std::size_t>(P));

      // Right edge of the previous block: [0] = diag for the first row,
      // [r] = left input for row r.  Under the affine model a companion
      // carries the Gotoh F state of that edge (horizontal runs continuing
      // into the next block); boundary messages between bands carry [H | E]
      // concatenated, one message per block as before, so fault plans hit
      // the same message sequence in both gap models.
      std::vector<std::int32_t> left_edge(H + 1, 0);
      std::vector<std::int32_t> left_f(affine ? H : 0, simd::kNegInf);

      for (std::size_t k = 0; k < K; ++k) {
        const std::size_t col_lo = grid.col_offsets[k];
        const std::size_t W = grid.block_width(k);

        top_row.assign(W, 0);
        if (affine) top_e.assign(W, simd::kNegInf);
        if (b > 0) {
          if (affine) {
            const auto both = comm.recv_vector<std::int32_t>(
                prev_rank, boundary_tag(b - 1, K, k));
            top_row.assign(both.begin(), both.begin() + static_cast<std::ptrdiff_t>(W));
            top_e.assign(both.begin() + static_cast<std::ptrdiff_t>(W), both.end());
          } else {
            top_row = comm.recv_vector<std::int32_t>(prev_rank,
                                                     boundary_tag(b - 1, K, k));
          }
        }
        bottom_row.resize(W);
        if (affine) bottom_e.resize(W);
        std::vector<std::int32_t> new_edge(H + 1, 0);
        std::vector<std::int32_t> new_edge_f(affine ? H : 0, simd::kNegInf);
        new_edge[0] = top_row.back();

        // One dispatched kernel call per block: columns on the lanes, rows
        // on the sweep, so the kernel's (b, a) tie-break is exactly the
        // (row, col) rule consider() enforces across ranks.
        simd::DiagBlock blk;
        blk.a_seq = t.data() + col_lo;
        blk.a_len = W;
        blk.b_seq = s.data() + row_lo;
        blk.b_len = H;
        blk.bound_a = top_row.data();
        blk.bound_b = left_edge.data() + 1;
        blk.corner = left_edge[0];
        blk.out_last_b = bottom_row.data();
        blk.out_last_a = new_edge.data() + 1;
        if (affine) {
          blk.bound_e = top_e.data();
          blk.bound_f = left_f.data();
          blk.out_last_b_e = bottom_e.data();
          blk.out_last_a_f = new_edge_f.data();
        }
        const simd::BestCell bc = simd::block_best(blk, kernel_params);
        if (bc.score > 0) {
          consider(local, bc.score, row_lo + bc.b + 1, col_lo + bc.a + 1);
        }
        left_edge = std::move(new_edge);
        if (affine) left_f = std::move(new_edge_f);

        if (b + 1 < B) {
          if (affine) {
            send_buf.assign(bottom_row.begin(), bottom_row.end());
            send_buf.insert(send_buf.end(), bottom_e.begin(), bottom_e.end());
            comm.send_span(next_rank, boundary_tag(b, K, k), send_buf.data(),
                           send_buf.size());
          } else {
            comm.send_span(next_rank, boundary_tag(b, K, k), bottom_row.data(),
                           bottom_row.size());
          }
        }
      }
    }

    // Reduce the per-rank bests to rank 0 with the row-major tie-break.
    struct WireBest {
      std::int64_t score;
      std::uint64_t i, j;
    };
    const WireBest mine{local.score, local.end_i, local.end_j};
    const auto gathered = comm.gather(0, &mine, sizeof mine);
    if (p == 0) {
      BestLocal combined;
      for (const auto& bytes : gathered) {
        WireBest wb;
        std::memcpy(&wb, bytes.data(), sizeof wb);
        consider(combined, static_cast<int>(wb.score), wb.i, wb.j);
      }
      global_best = combined;
    }
    comm.barrier();
  });

  result.best = global_best;
  result.traffic = world.total_counters();
  result.faults = world.fault_counters();
  if (global_best.score > 0) {
    const StartCoords start =
        affine ? find_alignment_start_affine(s, t, to_affine(cfg.scheme),
                                             global_best.end_i,
                                             global_best.end_j,
                                             global_best.score)
               : find_alignment_start(s, t, cfg.scheme, global_best.end_i,
                                      global_best.end_j, global_best.score);
    const Sequence sub_s = s.slice(start.i - 1, global_best.end_i);
    const Sequence sub_t = t.slice(start.j - 1, global_best.end_j);
    Alignment al;
    if (affine) {
      al = cfg.use_hirschberg
               ? hirschberg_affine(sub_s, sub_t, to_affine(cfg.scheme))
               : needleman_wunsch_affine(sub_s, sub_t, to_affine(cfg.scheme));
    } else {
      al = cfg.use_hirschberg ? hirschberg(sub_s, sub_t, cfg.scheme)
                              : needleman_wunsch(sub_s, sub_t, cfg.scheme);
    }
    al.s_begin = start.i - 1;
    al.t_begin = start.j - 1;
    result.rebuilt = RebuildResult{std::move(al), start.stats};
  }
  return result;
}

}  // namespace gdsm::core
