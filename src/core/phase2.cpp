#include "core/phase2.h"

#include <stdexcept>

#include "dsm/cluster.h"
#include "sw/full_matrix.h"

namespace gdsm::core {
namespace {

RegionAlignment align_one(const Sequence& s, const Sequence& t,
                          const Candidate& c, const ScoreScheme& scheme) {
  const Sequence sub_s = s.slice(c.s_begin - 1, c.s_end);
  const Sequence sub_t = t.slice(c.t_begin - 1, c.t_end);
  const Alignment al = needleman_wunsch(sub_s, sub_t, scheme);
  return RegionAlignment{c, al.score};
}

}  // namespace

Alignment align_region(const Sequence& s, const Sequence& t, const Candidate& c,
                       const ScoreScheme& scheme) {
  if (c.s_begin == 0 || c.t_begin == 0 || c.s_end > s.size() ||
      c.t_end > t.size() || c.s_begin > c.s_end || c.t_begin > c.t_end) {
    throw std::invalid_argument("align_region: bad region coordinates");
  }
  const Sequence sub_s = s.slice(c.s_begin - 1, c.s_end);
  const Sequence sub_t = t.slice(c.t_begin - 1, c.t_end);
  Alignment al = needleman_wunsch(sub_s, sub_t, scheme);
  al.s_begin += c.s_begin - 1;
  al.t_begin += c.t_begin - 1;
  return al;
}

Alignment align_region_local(const Sequence& s, const Sequence& t,
                             const Candidate& c, std::size_t margin,
                             const ScoreScheme& scheme) {
  if (c.s_begin == 0 || c.t_begin == 0 || c.s_end > s.size() ||
      c.t_end > t.size() || c.s_begin > c.s_end || c.t_begin > c.t_end) {
    throw std::invalid_argument("align_region_local: bad region coordinates");
  }
  const std::size_t s_lo = c.s_begin - 1 > margin ? c.s_begin - 1 - margin : 0;
  const std::size_t s_hi = std::min<std::size_t>(s.size(), c.s_end + margin);
  const std::size_t t_lo = c.t_begin - 1 > margin ? c.t_begin - 1 - margin : 0;
  const std::size_t t_hi = std::min<std::size_t>(t.size(), c.t_end + margin);
  Alignment al = smith_waterman(s.slice(s_lo, s_hi), t.slice(t_lo, t_hi), scheme);
  al.s_begin += s_lo;
  al.t_begin += t_lo;
  return al;
}

std::vector<RegionAlignment> phase2_serial(const Sequence& s, const Sequence& t,
                                           const std::vector<Candidate>& queue,
                                           const ScoreScheme& scheme) {
  std::vector<RegionAlignment> out;
  out.reserve(queue.size());
  for (const Candidate& c : queue) out.push_back(align_one(s, t, c, scheme));
  return out;
}

Phase2Result phase2_align(const Sequence& s, const Sequence& t,
                          const std::vector<Candidate>& queue,
                          const Phase2Config& cfg) {
  const int P = cfg.nprocs;
  const std::size_t S = queue.size();

  dsm::Cluster cluster(P, cfg.dsm);
  const dsm::SharedArray<Candidate> shared_queue(
      cluster.alloc(std::max<std::size_t>(S, 1) * sizeof(Candidate), 0), S);
  // Result slots; scattered writers touch disjoint slots, so no locks.
  const dsm::SharedArray<RegionAlignment> shared_results(
      cluster.alloc(std::max<std::size_t>(S, 1) * sizeof(RegionAlignment), 0), S);

  Phase2Result result;

  cluster.run([&](dsm::Node& node) {
    const int p = node.id();
    if (p == 0 && S > 0) {
      shared_queue.put_range(node, 0, S, queue.data());
    }
    node.barrier();

    for (std::size_t i = static_cast<std::size_t>(p); i < S;
         i += static_cast<std::size_t>(P)) {
      const Candidate c = shared_queue.get(node, i);
      shared_results.put(node, i, align_one(s, t, c, cfg.scheme));
    }

    node.barrier();
    if (p == 0 && S > 0) {
      result.alignments.resize(S);
      shared_results.get_range(node, 0, S, result.alignments.data());
    }
  });

  result.dsm_stats = cluster.stats();
  return result;
}

}  // namespace gdsm::core
