#include "core/sim_hybrid.h"

#include <algorithm>
#include <stdexcept>

#include "core/partition.h"

namespace gdsm::core {
namespace {

using sim::Cat;
using sim::ClusterSim;
using sim::CostModel;

double cluster_speed(const HybridSpec& spec, int cluster) {
  if (spec.speeds.empty()) return 1.0;
  return spec.speeds.at(static_cast<std::size_t>(cluster));
}

int cluster_of(const HybridSpec& spec, int node) {
  return node / spec.nodes_per_cluster;
}

// Barrier over the federation: BARR/BARRGRANT to node 0, paying the
// inter-cluster latency for remote sub-clusters.
void hybrid_barrier(ClusterSim& cs, const HybridSpec& spec, Cat cat) {
  const CostModel& cm = cs.cost();
  auto latency = [&](int node) {
    return cluster_of(spec, node) == 0 ? cm.msg_latency_s
                                       : spec.inter_latency_s;
  };
  double all_done = 0;
  for (int p = 0; p < cs.nodes(); ++p) {
    cs.busy(p, cm.proto_op_s, cat);
    const double arrival = cs.now(p) + latency(p);
    all_done = std::max(all_done, cs.server_process(0, arrival));
  }
  for (int p = 0; p < cs.nodes(); ++p) {
    cs.wait_until(p, all_done + (p == 0 ? 0.0 : latency(p)), cat);
    cs.busy(p, cm.proto_op_s, cat);
  }
}

}  // namespace

std::vector<int> hybrid_band_owners(std::size_t bands, const HybridSpec& spec) {
  const int N = spec.total_nodes();
  if (N <= 0) throw std::invalid_argument("hybrid_band_owners: no nodes");
  std::vector<int> owners(bands);
  if (!spec.weighted_bands) {
    for (std::size_t b = 0; b < bands; ++b) {
      owners[b] = static_cast<int>(b % static_cast<std::size_t>(N));
    }
    return owners;
  }
  // Speed-weighted assignment: give the next band to the node whose virtual
  // finish time (bands assigned / speed) is smallest, so every node ends
  // with work proportional to its speed.
  std::vector<double> assigned(static_cast<std::size_t>(N), 0.0);
  for (std::size_t b = 0; b < bands; ++b) {
    int best = 0;
    double best_finish = 1e300;
    for (int g = 0; g < N; ++g) {
      const double speed = cluster_speed(spec, cluster_of(spec, g));
      const double finish = (assigned[static_cast<std::size_t>(g)] + 1.0) / speed;
      if (finish < best_finish - 1e-12) {
        best_finish = finish;
        best = g;
      }
    }
    owners[b] = best;
    assigned[static_cast<std::size_t>(best)] += 1.0;
  }
  return owners;
}

SimReport sim_hybrid_blocked(std::size_t m, std::size_t n,
                             const HybridSpec& spec, const CostModel& cm) {
  const int N = spec.total_nodes();
  if (!spec.speeds.empty() &&
      spec.speeds.size() != static_cast<std::size_t>(spec.clusters)) {
    throw std::invalid_argument("sim_hybrid_blocked: speeds size mismatch");
  }
  const std::size_t bands =
      spec.bands ? spec.bands : 5 * static_cast<std::size_t>(N);
  const std::size_t blocks =
      spec.blocks ? spec.blocks : 5 * static_cast<std::size_t>(N);
  const BlockGrid grid = make_grid(m, n, bands, blocks);
  const std::size_t B = grid.bands();
  const std::size_t K = grid.blocks();
  const std::vector<int> owners = hybrid_band_owners(B, spec);

  ClusterSim cs(N, cm);
  hybrid_barrier(cs, spec, Cat::kBarrier);

  std::vector<std::vector<double>> signal_done(B, std::vector<double>(K, 0.0));

  for (std::size_t b = 0; b < B; ++b) {
    const int p = owners[b];
    const int prev = b > 0 ? owners[b - 1] : 0;
    const bool cross = b > 0 && cluster_of(spec, p) != cluster_of(spec, prev);
    const std::size_t H = grid.band_height(b);
    const double speed = cluster_speed(spec, cluster_of(spec, p));

    for (std::size_t k = 0; k < K; ++k) {
      const std::size_t W = grid.block_width(k);
      const std::size_t boundary_bytes = W * cm.heuristic_cell_bytes;
      if (b > 0) {
        if (cross) {
          // Inter-cluster: one eager message carries the whole boundary
          // segment; no cv manager, no page faults.
          const double arrival = signal_done[b - 1][k] + spec.inter_latency_s +
                                 static_cast<double>(boundary_bytes) *
                                     spec.inter_s_per_byte;
          cs.wait_until(p, arrival, Cat::kComm);
          cs.busy(p, cm.proto_op_s, Cat::kComm);
        } else {
          // Intra-cluster: the JIAJIA cv + page-fault path of Strategy 2.
          cs.rpc(p, prev, 8, 16, Cat::kLockCv, signal_done[b - 1][k]);
          const std::size_t pages =
              std::max<std::size_t>(1, (boundary_bytes + cm.page_bytes - 1) /
                                           cm.page_bytes);
          for (std::size_t q = 0; q < pages; ++q) {
            cs.rpc(p, prev, 8, cm.page_bytes, Cat::kComm);
          }
        }
      }
      const double cell =
          cm.effective_cell(cm.cell_s_heuristic, 2 * W * cm.heuristic_cell_bytes) /
          speed;
      cs.busy(p, static_cast<double>(H) * static_cast<double>(W) * cell,
              Cat::kCompute);
      if (b + 1 < B) {
        const bool next_cross =
            cluster_of(spec, owners[b + 1]) != cluster_of(spec, p);
        if (next_cross) {
          // Send cost of the eager boundary message.
          cs.busy(p, cm.proto_op_s + static_cast<double>(boundary_bytes) *
                                         spec.inter_s_per_byte,
                  Cat::kComm);
          signal_done[b][k] = cs.now(p);
        } else {
          signal_done[b][k] = cs.send_async(p, p, 24, Cat::kLockCv);
        }
      }
    }
  }

  hybrid_barrier(cs, spec, Cat::kBarrier);

  SimReport rep;
  rep.core_s = cs.makespan();
  rep.total_s = rep.core_s + cm.init_time_s + cm.term_time_s;
  rep.average = cs.average_breakdown();
  rep.per_node.reserve(static_cast<std::size_t>(N));
  for (int p = 0; p < N; ++p) rep.per_node.push_back(cs.breakdown(p));
  return rep;
}

}  // namespace gdsm::core
