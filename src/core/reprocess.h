// Exact re-processing of score-matrix subregions from the pre-process
// strategy's checkpoints (Section 5).
//
// "Although little information is contained in the result matrix, it
//  indicates interesting regions in the score matrix. [...] Knowing
//  interesting areas of the matrix and having the boundary columns and rows
//  allow one to reprocess these limited areas so as to retrieve the local
//  alignments."
//
// Given the saved columns (every ip-th column, per-band fragments) and the
// saved passage rows (each band's bottom row), any subregion anchored at a
// saved column/row pair can be recomputed EXACTLY without touching the rest
// of the matrix: the saved column provides the left boundary, the saved row
// the top boundary, and the DP recurrence reproduces the interior
// bit-for-bit.  Requested regions are snapped outward to the nearest
// checkpoints automatically.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::core {

/// Saved fragments keyed by (index, begin): for columns, index = column and
/// begin = first row; for passage rows, index = row and begin = first
/// column.  Both MemoryColumnStore::snapshot() and FileColumnStore::load()
/// produce this type directly.
using SavedFragments =
    std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::int32_t>>;

/// 1-based inclusive cell rectangle of the score matrix.
struct Subregion {
  std::size_t row_lo = 1;
  std::size_t row_hi = 1;
  std::size_t col_lo = 1;
  std::size_t col_hi = 1;
};

struct ReprocessResult {
  /// The region actually recomputed, after snapping to checkpoints.
  Subregion computed;
  /// The recomputed score cells, row-major over `computed` (rows x cols).
  std::vector<std::int32_t> scores;
  /// Local alignments (score >= min_score) whose end cells lie inside the
  /// REQUESTED region, best first, greedily non-overlapping.
  std::vector<Alignment> alignments;

  std::size_t rows() const noexcept { return computed.row_hi - computed.row_lo + 1; }
  std::size_t cols() const noexcept { return computed.col_hi - computed.col_lo + 1; }
  std::int32_t at(std::size_t row, std::size_t col) const {
    return scores[(row - computed.row_lo) * cols() + (col - computed.col_lo)];
  }
};

/// Recomputes `region` from the checkpoints.  `columns` must hold the
/// per-band fragments of some column <= region.col_lo - 1 (or the region
/// must touch column 1); `passage_rows` likewise for a row <= region.row_lo
/// - 1.  Throws std::runtime_error when no usable checkpoint exists.
ReprocessResult reprocess_region(const Sequence& s, const Sequence& t,
                                 const SavedFragments& columns,
                                 const SavedFragments& passage_rows,
                                 const Subregion& region, int min_score,
                                 const ScoreScheme& scheme = {},
                                 std::size_t max_alignments = 8);

}  // namespace gdsm::core
