// Common result type of the phase-1 parallel strategies.
#pragma once

#include <vector>

#include "dsm/stats.h"
#include "sw/alignment.h"

namespace gdsm::core {

struct StrategyResult {
  /// The finalized queue of similarity regions (sorted by subsequence size,
  /// repeats removed), 1-based inclusive coordinates.
  std::vector<Candidate> candidates;
  /// Protocol activity of the run (page faults, diffs, invalidations, ...).
  dsm::DsmStats dsm_stats;
  /// True if any node's shared result buffer overflowed (queue truncated).
  bool overflow = false;
};

}  // namespace gdsm::core
