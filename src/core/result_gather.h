// Gathering per-node candidate queues through shared memory.
//
// Each node owns a fixed-capacity shared buffer (homed at that node, so the
// publishing writes are local); after the end-of-phase barrier, node 0 reads
// every buffer and builds the merged queue.  This mirrors the paper's
// "alignments are then gathered and duplicate alignments removed".
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/cluster.h"
#include "sw/alignment.h"

namespace gdsm::core {

class CandidateGather {
 public:
  /// Must be constructed before Cluster::run (it allocates shared memory).
  CandidateGather(dsm::Cluster& cluster, int nprocs, std::size_t capacity)
      : capacity_(capacity) {
    counts_ = dsm::SharedArray<std::uint64_t>(
        cluster.alloc(static_cast<std::size_t>(nprocs) * sizeof(std::uint64_t),
                      /*home=*/0),
        static_cast<std::size_t>(nprocs));
    buffers_.reserve(static_cast<std::size_t>(nprocs));
    for (int p = 0; p < nprocs; ++p) {
      buffers_.emplace_back(cluster.alloc(capacity * sizeof(Candidate), p),
                            capacity);
    }
  }

  /// Called by every node with its local queue, before the final barrier.
  /// Returns false when the queue was truncated to the buffer capacity.
  bool publish(dsm::Node& node, const std::vector<Candidate>& local) const {
    const std::size_t n = std::min(local.size(), capacity_);
    if (n > 0) {
      buffers_[static_cast<std::size_t>(node.id())].put_range(node, 0, n,
                                                              local.data());
    }
    counts_.put(node, static_cast<std::size_t>(node.id()),
                static_cast<std::uint64_t>(n));
    return n == local.size();
  }

  /// Called on node 0 after the final barrier; merges and finalizes.
  std::vector<Candidate> collect(dsm::Node& node0) const {
    std::vector<Candidate> all;
    for (std::size_t p = 0; p < buffers_.size(); ++p) {
      const auto n = static_cast<std::size_t>(counts_.get(node0, p));
      const std::size_t old = all.size();
      all.resize(old + n);
      if (n > 0) buffers_[p].get_range(node0, 0, n, all.data() + old);
    }
    finalize_candidates(all);
    return all;
  }

 private:
  std::size_t capacity_;
  dsm::SharedArray<std::uint64_t> counts_;
  std::vector<dsm::SharedArray<Candidate>> buffers_;
};

}  // namespace gdsm::core
