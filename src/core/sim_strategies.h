// Simulator twins of the three parallel strategies and phase 2.
//
// Each twin replays, on the calibrated discrete-event engine, the exact
// message/compute sequence of the paper's implementation on the 8-node
// Pentium II / 100 Mbps / JIAJIA platform, producing deterministic makespans
// and Fig. 10-style breakdowns.  These regenerate every timing table and
// figure of the evaluation (see DESIGN.md's experiment index).
//
// One modeling note: the paper's Strategy 1 keeps its two linear arrays in
// shared (DSM-checked) memory and copies the writing row onto the reading
// row after every row — the simulator charges this as the cost model's
// dsm_write_factor on every cell.  Our threaded reimplementation avoids the
// copy with a swap, so it is *leaner* than the system the paper measured;
// the simulator models the paper's system.
#pragma once

#include <cstddef>
#include <vector>

#include "core/preprocess.h"
#include "sim/cost_model.h"
#include "sim/engine.h"

namespace gdsm::core {

struct SimReport {
  double core_s = 0;    ///< makespan of the computation phase
  double total_s = 0;   ///< core + DSM init + termination
  sim::Breakdown average;               ///< per-node average, by category
  std::vector<sim::Breakdown> per_node;

  double speedup_vs(const SimReport& serial) const {
    return serial.total_s / total_s;
  }
};

/// Strategy 1 (Section 4.2): column partition, per-row border handshake.
/// P == 1 models the serial program (no DSM overhead at all).
SimReport sim_wavefront(std::size_t m, std::size_t n, int nprocs,
                        const sim::CostModel& cm = {});

/// Strategy 2 (Section 4.3): bands x blocks with one communication per
/// block.  bands/blocks as in BlockedConfig (already multiplied by P).
SimReport sim_blocked(std::size_t m, std::size_t n, int nprocs,
                      std::size_t bands, std::size_t blocks,
                      const sim::CostModel& cm = {});

/// Strategy 2 over MESSAGE PASSING on the same 1998 platform: the boundary
/// segment travels as one eager message instead of the cv + page-fault
/// protocol.  The simulated twin of blocked_align_mp, used to quantify the
/// DSM abstraction's wire cost (Section 7's trade-off).
SimReport sim_blocked_mp(std::size_t m, std::size_t n, int nprocs,
                         std::size_t bands, std::size_t blocks,
                         const sim::CostModel& cm = {});

/// Strategy 3 (Section 5) parameters mirrored from PreProcessConfig.
struct SimPreprocessOptions {
  BandScheme band_scheme = BandScheme::kFixed;
  std::size_t band_rows = 1024;
  std::size_t chunk_cols = 128;
  ChunkGrowth chunk_growth = ChunkGrowth::kFixed;
  std::size_t save_interleave = 0;
  IoMode io_mode = IoMode::kNone;
};

SimReport sim_preprocess(std::size_t m, std::size_t n, int nprocs,
                         const SimPreprocessOptions& opt,
                         const sim::CostModel& cm = {});

/// Phase 2 (Section 4.4): `pairs` subsequence comparisons with the given
/// (len_s, len_t) sizes, scattered over P processors.
SimReport sim_phase2(const std::vector<std::pair<std::size_t, std::size_t>>& pairs,
                     int nprocs, const sim::CostModel& cm = {});

/// Synthetic pair-size distribution matching the paper's phase-2 workload
/// (average subsequence size ~253 bytes), deterministic in `seed`.
std::vector<std::pair<std::size_t, std::size_t>> phase2_pair_sizes(
    std::size_t count, std::size_t mean = 253, std::uint64_t seed = 7);

}  // namespace gdsm::core
