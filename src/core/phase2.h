// Phase 2 (Section 4.4): retrieving the actual alignments.
//
// Phase 1 produces a queue of similarity regions (coordinates only).  For
// each region the subsequences are extracted and globally aligned with the
// Needleman–Wunsch algorithm (Section 2.3).  The queue is treated as a
// vector sorted by subsequence size and distributed by SCATTERED MAPPING:
// processor Pi handles positions i, i+P, i+2P, ... of the vector, and writes
// its results to the same positions of a shared result vector — no locks or
// condition variables are needed anywhere in this phase.
#pragma once

#include <cstdint>
#include <vector>

#include "dsm/config.h"
#include "dsm/stats.h"
#include "sw/alignment.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::core {

struct Phase2Config {
  int nprocs = 4;
  ScoreScheme scheme{};
  dsm::DsmConfig dsm{};
};

/// Result record for one similarity region (fixed-size so it can live in a
/// shared vector slot).
struct RegionAlignment {
  Candidate region;            ///< the phase-1 coordinates (1-based inclusive)
  std::int32_t global_score = 0;  ///< NW score of the extracted subsequences

  friend bool operator==(const RegionAlignment&, const RegionAlignment&) = default;
};

struct Phase2Result {
  std::vector<RegionAlignment> alignments;  ///< same order as the input queue
  dsm::DsmStats dsm_stats;
};

/// Scattered-mapping parallel phase 2 on a threaded DSM cluster.
Phase2Result phase2_align(const Sequence& s, const Sequence& t,
                          const std::vector<Candidate>& queue,
                          const Phase2Config& cfg = {});

/// Serial reference implementation (used by tests and the 1-processor rows).
std::vector<RegionAlignment> phase2_serial(const Sequence& s, const Sequence& t,
                                           const std::vector<Candidate>& queue,
                                           const ScoreScheme& scheme = {});

/// Full global alignment of one region, with coordinates mapped back to the
/// original sequences (for display — Fig. 16 style records).
Alignment align_region(const Sequence& s, const Sequence& t, const Candidate& c,
                       const ScoreScheme& scheme = {});

/// Local (Smith–Waterman) alignment in a window padded `margin` characters
/// around the region, mapped back to the original sequences.  The heuristic
/// scan opens candidates only after the score has risen `open_threshold`
/// above the minimum, so reported begin coordinates trail the true alignment
/// start; a padded local re-alignment recovers the full extent.
Alignment align_region_local(const Sequence& s, const Sequence& t,
                             const Candidate& c, std::size_t margin = 32,
                             const ScoreScheme& scheme = {});

}  // namespace gdsm::core
