// Column stores for the pre-process strategy (Section 5).
//
// The strategy saves every ip-th column of the score matrix (the "save
// interleave") so interesting regions can be re-processed later without
// recomputing the whole matrix.  Three I/O modes are modeled:
//   kNone      — storing disabled (used to isolate I/O effects, Fig. 20);
//   kImmediate — a ready column is written with a blocking I/O operation;
//   kDeferred  — columns are kept in memory and written after the
//                computation finishes (more memory, no mid-compute stalls).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <vector>

namespace gdsm::core {

enum class IoMode { kNone, kImmediate, kDeferred };

const char* io_mode_name(IoMode mode) noexcept;

/// Destination for saved columns.  Implementations must be safe for
/// concurrent calls from different node threads.
class ColumnStore {
 public:
  virtual ~ColumnStore() = default;

  /// Saves the cells of column `col` (1-based) covering matrix rows
  /// [row_begin, row_begin + values.size()), 1-based.
  virtual void save(std::uint32_t col, std::uint32_t row_begin,
                    std::span<const std::int32_t> values) = 0;

  /// Completes any pending writes (deferred mode drains here).
  virtual void flush() = 0;
};

/// Keeps saved columns in memory; used by tests and the section-6 pipeline.
class MemoryColumnStore final : public ColumnStore {
 public:
  void save(std::uint32_t col, std::uint32_t row_begin,
            std::span<const std::int32_t> values) override;
  void flush() override {}

  /// Saved fragment keyed by (column, first row).
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::int32_t>>
  snapshot() const;

  std::size_t fragments() const;
  std::size_t total_cells() const;

 private:
  mutable std::mutex mu_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::int32_t>>
      saved_;
};

/// Appends binary records to one file per strategy run:
///   u32 col, u32 row_begin, u32 count, i32 values[count]
/// Immediate mode writes (and syncs) per save; deferred mode buffers and
/// drains on flush().
class FileColumnStore final : public ColumnStore {
 public:
  FileColumnStore(std::string path, IoMode mode);
  ~FileColumnStore() override;

  void save(std::uint32_t col, std::uint32_t row_begin,
            std::span<const std::int32_t> values) override;
  void flush() override;

  const std::string& path() const noexcept { return path_; }

  /// Reads a column file back (for tests and re-processing).
  static std::map<std::pair<std::uint32_t, std::uint32_t>,
                  std::vector<std::int32_t>>
  load(const std::string& path);

 private:
  void write_record(std::uint32_t col, std::uint32_t row_begin,
                    std::span<const std::int32_t> values);

  std::string path_;
  IoMode mode_;
  std::mutex mu_;
  int fd_ = -1;
  struct Pending {
    std::uint32_t col, row_begin;
    std::vector<std::int32_t> values;
  };
  std::vector<Pending> pending_;
};

}  // namespace gdsm::core
