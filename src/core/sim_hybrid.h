// Future work of Section 7, realized as a simulation experiment:
// "we intend to run this modified algorithm in order to compare very long
//  DNA sequences (larger than 1 MBP) in a heterogeneous cluster.  In this
//  case, message-passing will be used for inter-cluster communication and
//  DSM will be used for communicating processes that belong to the same
//  cluster."
//
// The model extends the blocked-strategy simulator to a federation of
// sub-clusters: bands are distributed over ALL nodes; a band boundary that
// crosses a sub-cluster edge travels as ONE eager message over the
// inter-cluster link (higher latency, configurable bandwidth, no cv-manager
// round trips), while intra-cluster boundaries use the JIAJIA cv + page
// protocol as before.  Sub-clusters may have different CPU speeds
// (heterogeneous hardware), and bands can be assigned round-robin or
// speed-weighted.
#pragma once

#include <cstddef>
#include <vector>

#include "core/sim_strategies.h"
#include "sim/cost_model.h"

namespace gdsm::core {

struct HybridSpec {
  int clusters = 2;
  int nodes_per_cluster = 8;

  /// Inter-cluster link (campus backbone / metro): one-way latency and
  /// per-byte time.  Intra-cluster costs come from the CostModel.
  double inter_latency_s = 2e-3;
  double inter_s_per_byte = 8.0e-8;  // 100 Mbps by default

  /// Per-cluster CPU speed multiplier (1.0 = the Pentium II baseline;
  /// 2.0 = twice as fast).  Sized `clusters`, or empty for all-1.0.
  std::vector<double> speeds;

  /// Assign bands proportionally to cluster speed instead of round-robin —
  /// the simple static load balancing a heterogeneous federation needs.
  bool weighted_bands = false;

  /// Band/block decomposition; 0 means 5x5 multiplier on the total node
  /// count, the Table 3 optimum.
  std::size_t bands = 0;
  std::size_t blocks = 0;

  int total_nodes() const noexcept { return clusters * nodes_per_cluster; }
};

/// Owner of each band under the spec's assignment policy (exposed for
/// tests).  Owners are global node ids; node g belongs to sub-cluster
/// g / nodes_per_cluster.
std::vector<int> hybrid_band_owners(std::size_t bands, const HybridSpec& spec);

/// Blocked heuristic strategy on the federated cluster.
SimReport sim_hybrid_blocked(std::size_t m, std::size_t n,
                             const HybridSpec& spec,
                             const sim::CostModel& cm = {});

}  // namespace gdsm::core
