#include "core/report_io.h"

#include <algorithm>

#include "obs/snapshots.h"

namespace gdsm::core {

obs::Json sim_report_json(const SimReport& rep, bool per_node) {
  obs::Json j = obs::Json::object();
  j.set("core_s", rep.core_s);
  j.set("total_s", rep.total_s);
  j.set("breakdown", obs::to_json(rep.average));
  if (per_node) {
    obs::Json nodes = obs::Json::array();
    for (const sim::Breakdown& bd : rep.per_node) nodes.push(obs::to_json(bd));
    j.set("per_node", std::move(nodes));
  }
  return j;
}

obs::Json strategy_result_json(const StrategyResult& r) {
  obs::Json j = obs::Json::object();
  obs::Json cand = obs::Json::object();
  cand.set("count", r.candidates.size());
  int best = 0;
  std::uint64_t largest = 0;
  for (const Candidate& c : r.candidates) {
    best = std::max(best, static_cast<int>(c.score));
    largest = std::max(largest, c.size_key());
  }
  cand.set("best_score", best);
  cand.set("largest_size_key", largest);
  j.set("candidates", std::move(cand));
  j.set("overflow", r.overflow);
  j.set("dsm", obs::to_json(r.dsm_stats));
  return j;
}

obs::Json exact_result_json(const ExactParallelResult& r) {
  obs::Json j = obs::Json::object();
  j.set("score", r.best.score);
  const Alignment& a = r.rebuilt.alignment;
  j.set("s_begin", a.s_begin);
  j.set("s_end", a.s_end());
  j.set("t_begin", a.t_begin);
  j.set("t_end", a.t_end());
  j.set("computed_cells", r.rebuilt.stats.computed_cells);
  j.set("traffic", obs::to_json(r.traffic));
  j.set("faults", obs::to_json(r.faults));
  return j;
}

}  // namespace gdsm::core
