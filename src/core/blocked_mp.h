// The blocked heuristic strategy on MESSAGE PASSING instead of DSM.
//
// The paper chose DSM because it "offers an easier programming model than
// its message-passing counterpart" (Section 7) and planned message passing
// for inter-cluster communication as future work.  This variant implements
// the identical band/block decomposition over the mp:: layer: a finished
// block's bottom row is SENT to the next band's owner instead of being
// published through shared pages, and the candidate queues are gathered to
// rank 0.  It must produce exactly the same candidate queue as the DSM
// variant and the serial scan — only the communication substrate differs.
#pragma once

#include "core/blocked.h"
#include "core/strategy_result.h"
#include "net/transport.h"
#include "util/sequence.h"

namespace gdsm::core {

struct MpStrategyResult {
  std::vector<Candidate> candidates;
  net::TrafficCounters traffic;  ///< messages/bytes the ranks exchanged
  net::FaultCounters faults;     ///< injected-fault activity (net/fault.h)
};

/// Message-passing twin of blocked_align (uses BlockedConfig's nprocs,
/// multipliers/explicit grid, scheme and params; of the dsm member only the
/// fault plan applies — it drives the mp transport, the DSM protocol knobs
/// have no message-passing equivalent).
MpStrategyResult blocked_align_mp(const Sequence& s, const Sequence& t,
                                  const BlockedConfig& cfg = {});

}  // namespace gdsm::core
