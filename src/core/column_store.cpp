#include "core/column_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace gdsm::core {

const char* io_mode_name(IoMode mode) noexcept {
  switch (mode) {
    case IoMode::kNone: return "no IO";
    case IoMode::kImmediate: return "immed. IO";
    case IoMode::kDeferred: return "def. IO";
  }
  return "?";
}

void MemoryColumnStore::save(std::uint32_t col, std::uint32_t row_begin,
                             std::span<const std::int32_t> values) {
  const std::scoped_lock lock(mu_);
  saved_[{col, row_begin}].assign(values.begin(), values.end());
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::int32_t>>
MemoryColumnStore::snapshot() const {
  const std::scoped_lock lock(mu_);
  return saved_;
}

std::size_t MemoryColumnStore::fragments() const {
  const std::scoped_lock lock(mu_);
  return saved_.size();
}

std::size_t MemoryColumnStore::total_cells() const {
  const std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, vals] : saved_) n += vals.size();
  return n;
}

FileColumnStore::FileColumnStore(std::string path, IoMode mode)
    : path_(std::move(path)), mode_(mode) {
  if (mode_ == IoMode::kNone) return;
  fd_ = ::open(path_.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd_ < 0) throw std::runtime_error("FileColumnStore: cannot open " + path_);
}

FileColumnStore::~FileColumnStore() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; a failed flush surfaces on explicit flush().
  }
  if (fd_ >= 0) ::close(fd_);
}

void FileColumnStore::write_record(std::uint32_t col, std::uint32_t row_begin,
                                   std::span<const std::int32_t> values) {
  std::vector<std::byte> buf(3 * sizeof(std::uint32_t) +
                             values.size() * sizeof(std::int32_t));
  const std::uint32_t header[3] = {col, row_begin,
                                   static_cast<std::uint32_t>(values.size())};
  std::memcpy(buf.data(), header, sizeof header);
  std::memcpy(buf.data() + sizeof header, values.data(),
              values.size() * sizeof(std::int32_t));
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t w = ::write(fd_, buf.data() + off, buf.size() - off);
    if (w < 0) throw std::runtime_error("FileColumnStore: write failed");
    off += static_cast<std::size_t>(w);
  }
}

void FileColumnStore::save(std::uint32_t col, std::uint32_t row_begin,
                           std::span<const std::int32_t> values) {
  if (mode_ == IoMode::kNone) return;
  const std::scoped_lock lock(mu_);
  if (mode_ == IoMode::kImmediate) {
    write_record(col, row_begin, values);
  } else {
    pending_.push_back(
        Pending{col, row_begin, {values.begin(), values.end()}});
  }
}

void FileColumnStore::flush() {
  const std::scoped_lock lock(mu_);
  for (const Pending& rec : pending_) {
    write_record(rec.col, rec.row_begin, rec.values);
  }
  pending_.clear();
  if (fd_ >= 0) ::fsync(fd_);
}

std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::int32_t>>
FileColumnStore::load(const std::string& path) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::vector<std::int32_t>> out;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) throw std::runtime_error("FileColumnStore: cannot read " + path);
  std::uint32_t header[3];
  while (std::fread(header, sizeof header, 1, f) == 1) {
    std::vector<std::int32_t> vals(header[2]);
    if (header[2] != 0 &&
        std::fread(vals.data(), sizeof(std::int32_t), vals.size(), f) !=
            vals.size()) {
      std::fclose(f);
      throw std::runtime_error("FileColumnStore: truncated record in " + path);
    }
    out[{header[0], header[1]}] = std::move(vals);
  }
  std::fclose(f);
  return out;
}

}  // namespace gdsm::core
