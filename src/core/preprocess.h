// Strategy 3 (Section 5): the exact "pre-process" strategy.
//
// Goal: run the ORIGINAL Smith–Waterman recurrence (no candidate-tracking
// heuristics, no loss of information) while keeping memory bounded:
//   * only a limited amount of the similarity array is shared (the passage
//     bands carrying each band's bottom row to the next band's owner);
//   * processing inside a band is done by columns, each column stored in a
//     linear array for intra-node locality;
//   * no alignment tracking — only a scoreboard: the *result matrix* counts,
//     per band and per group of `result_interleave` columns, how many cells
//     scored at or above a threshold;
//   * every `save_interleave`-th column can be saved to disk (I/O modes
//     none / immediate / deferred) so interesting regions can be
//     re-processed later.
//
// Band heights follow one of three schemes (fixed / even / balanced, the
// balanced one per Section 5's equations); columns move between neighbours
// in chunks whose widths may grow arithmetically or geometrically.
#pragma once

#include <cstdint>
#include <vector>

#include "core/column_store.h"
#include "dsm/config.h"
#include "dsm/stats.h"
#include "sw/scoring.h"
#include "util/sequence.h"

namespace gdsm::core {

enum class BandScheme { kFixed, kEven, kBalanced };
enum class ChunkGrowth { kFixed, kArithmetic, kGeometric };

const char* band_scheme_name(BandScheme s) noexcept;
const char* chunk_growth_name(ChunkGrowth g) noexcept;

struct PreProcessConfig {
  int nprocs = 4;
  ScoreScheme scheme{};
  int threshold = 10;  ///< scores >= threshold count as hits

  BandScheme band_scheme = BandScheme::kFixed;
  std::size_t band_rows = 1024;  ///< requested band height (fixed/balanced)

  std::size_t chunk_cols = 128;  ///< initial chunk width
  ChunkGrowth chunk_growth = ChunkGrowth::kFixed;

  std::size_t result_interleave = 1024;  ///< columns summarized per result cell
  std::size_t save_interleave = 0;       ///< save every ip-th column; 0 = never
  IoMode io_mode = IoMode::kNone;
  ColumnStore* store = nullptr;  ///< required when io_mode != kNone

  /// Optional store for the passage bands ("all passage bands are saved once
  /// the last of its cells has been updated").  Records are keyed by the
  /// global ROW index in the store's `col` field and the 1-based first
  /// column in `row_begin` — the transposed use of the same interface.
  /// Together with the saved columns this enables exact re-processing of any
  /// subregion (see core/reprocess.h).
  ColumnStore* row_store = nullptr;

  dsm::DsmConfig dsm{};
};

struct PreProcessResult {
  /// result_matrix[band][group] = number of cells of that band whose score
  /// reached the threshold, among columns j with (j-1)/result_interleave ==
  /// group (1-based j).
  std::vector<std::vector<std::uint64_t>> result_matrix;
  std::vector<std::size_t> row_offsets;  ///< bands+1 entries, 0-based rows
  std::size_t result_interleave = 0;
  dsm::DsmStats dsm_stats;

  std::uint64_t total_hits() const noexcept;
  std::size_t bands() const noexcept {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
};

/// Band row-offsets for a scheme (exposed for tests and the simulator twin).
/// `m` is the number of matrix rows (|s|).
std::vector<std::size_t> band_offsets(std::size_t m, int nprocs, BandScheme scheme,
                                      std::size_t band_rows);

/// Chunk column-offsets (0-based, last == n) for a growth law.
std::vector<std::size_t> chunk_offsets(std::size_t n, std::size_t first_chunk,
                                       ChunkGrowth growth);

/// Runs the pre-process strategy on a threaded DSM cluster.
PreProcessResult preprocess_align(const Sequence& s, const Sequence& t,
                                  const PreProcessConfig& cfg = {});

}  // namespace gdsm::core
