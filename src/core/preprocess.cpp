#include "core/preprocess.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/partition.h"
#include "dsm/cluster.h"
#include "simd/dispatch.h"

namespace gdsm::core {

const char* band_scheme_name(BandScheme s) noexcept {
  switch (s) {
    case BandScheme::kFixed: return "fixed";
    case BandScheme::kEven: return "equal";
    case BandScheme::kBalanced: return "balanced";
  }
  return "?";
}

const char* chunk_growth_name(ChunkGrowth g) noexcept {
  switch (g) {
    case ChunkGrowth::kFixed: return "fixed";
    case ChunkGrowth::kArithmetic: return "arithmetic";
    case ChunkGrowth::kGeometric: return "geometric";
  }
  return "?";
}

std::uint64_t PreProcessResult::total_hits() const noexcept {
  std::uint64_t total = 0;
  for (const auto& row : result_matrix) {
    for (auto v : row) total += v;
  }
  return total;
}

std::vector<std::size_t> band_offsets(std::size_t m, int nprocs, BandScheme scheme,
                                      std::size_t band_rows) {
  if (m == 0) return {0};
  const auto P = static_cast<std::size_t>(nprocs);
  auto ceil_div = [](std::size_t a, std::size_t b) { return (a + b - 1) / b; };

  std::size_t height = 0;
  switch (scheme) {
    case BandScheme::kFixed:
      height = std::min(std::max<std::size_t>(band_rows, 1), m);
      break;
    case BandScheme::kEven:
      // One band per node, all of (nearly) the same height.
      height = ceil_div(m, P);
      break;
    case BandScheme::kBalanced: {
      // Section 5's equations: make every node process the same number of
      // bands, with heights as close to the requested band size as possible.
      const std::size_t bsize = std::min(std::max<std::size_t>(band_rows, 1), m);
      const std::size_t bands_proc = ceil_div(ceil_div(m, bsize), P);
      const std::size_t down = ceil_div(m, bands_proc * P);
      const std::size_t up =
          bands_proc > 1 ? ceil_div(m, (bands_proc - 1) * P) : down;
      auto dist = [bsize](std::size_t h) {
        return h > bsize ? h - bsize : bsize - h;
      };
      height = dist(down) <= dist(up) ? down : up;
      break;
    }
  }
  std::vector<std::size_t> offs;
  for (std::size_t pos = 0; pos < m; pos += height) offs.push_back(pos);
  offs.push_back(m);
  return offs;
}

std::vector<std::size_t> chunk_offsets(std::size_t n, std::size_t first_chunk,
                                       ChunkGrowth growth) {
  std::vector<std::size_t> offs{0};
  std::size_t chunk = std::max<std::size_t>(first_chunk, 1);
  std::size_t step = chunk;
  std::size_t pos = 0;
  while (pos < n) {
    pos = std::min(n, pos + chunk);
    offs.push_back(pos);
    switch (growth) {
      case ChunkGrowth::kFixed:
        break;
      case ChunkGrowth::kArithmetic:
        chunk += step;
        break;
      case ChunkGrowth::kGeometric:
        chunk *= 2;
        break;
    }
  }
  return offs;
}

PreProcessResult preprocess_align(const Sequence& s, const Sequence& t,
                                  const PreProcessConfig& cfg) {
  const int P = cfg.nprocs;
  const std::size_t m = s.size();
  const std::size_t n = t.size();

  PreProcessResult result;
  result.result_interleave = std::max<std::size_t>(cfg.result_interleave, 1);
  result.row_offsets = band_offsets(m, P, cfg.band_scheme, cfg.band_rows);
  if (m == 0 || n == 0) return result;
  if (cfg.io_mode != IoMode::kNone && cfg.store == nullptr) {
    throw std::invalid_argument("preprocess_align: io_mode set but no store");
  }

  const bool affine = cfg.scheme.affine();
  const bool column_checkpoints =
      cfg.save_interleave != 0 && cfg.io_mode != IoMode::kNone;

  const std::vector<std::size_t>& rows = result.row_offsets;
  const std::size_t B = rows.size() - 1;
  const std::vector<std::size_t> chunks =
      chunk_offsets(n, cfg.chunk_cols, cfg.chunk_growth);
  const std::size_t n_chunks = chunks.size() - 1;
  const std::size_t ipr = result.result_interleave;
  const std::size_t groups = (n + ipr - 1) / ipr;

  dsm::DsmConfig dsm_cfg = cfg.dsm;
  dsm_cfg.n_cvs = std::max<int>(dsm_cfg.n_cvs, static_cast<int>(B) + 1);
  dsm::Cluster cluster(P, dsm_cfg);

  auto owner = [&](std::size_t b) { return static_cast<int>(b % static_cast<std::size_t>(P)); };

  // Passage bands: the bottom row of every band, homed at the producer.
  // Under the affine model each band also publishes the Gotoh E state of its
  // bottom row (the vertical gap runs crossing into the next band), stored
  // in the second half of the same shared array.
  const std::size_t passage_width = affine ? 2 * n : n;
  std::vector<dsm::SharedArray<std::int32_t>> passage;
  passage.reserve(B);
  for (std::size_t b = 0; b < B; ++b) {
    passage.emplace_back(
        cluster.alloc(passage_width * sizeof(std::int32_t), owner(b)),
        passage_width);
  }
  // Result matrix rows, homed at the band owner ("allocated in such a way as
  // to allow each node to handle writes locally").
  std::vector<dsm::SharedArray<std::uint64_t>> result_rows;
  result_rows.reserve(B);
  for (std::size_t b = 0; b < B; ++b) {
    result_rows.emplace_back(
        cluster.alloc(groups * sizeof(std::uint64_t), owner(b)), groups);
  }

  std::vector<std::vector<std::uint64_t>> collected;

  cluster.run([&](dsm::Node& node) {
    const int p = node.id();
    node.barrier();

    std::vector<std::int32_t> prev_col;
    std::vector<std::int32_t> cur_col;
    std::vector<std::int32_t> prev_col_f;   // affine F state of prev_col
    std::vector<std::int32_t> cur_col_f;
    std::vector<std::int32_t> top_in;       // incoming passage chunk
    std::vector<std::int32_t> top_in_e;     // affine E state of top_in
    std::vector<std::int32_t> bottom_out;   // outgoing passage chunk
    std::vector<std::int32_t> bottom_out_e;
    std::vector<std::uint64_t> hits(groups);
    std::vector<std::uint64_t> col_hits;    // per-column counts from the kernel

    // Column checkpoints snapshot interior columns the block kernel never
    // materializes, so those runs keep the scalar column sweep; everything
    // else goes through the dispatched block kernel, one band×chunk block
    // per call.
    const simd::ScoreParams kernel_params{cfg.scheme.match, cfg.scheme.mismatch,
                                          cfg.scheme.gap, cfg.scheme.gap_open};

    for (std::size_t b = static_cast<std::size_t>(p); b < B;
         b += static_cast<std::size_t>(P)) {
      const std::size_t row_lo = rows[b];
      const std::size_t H = rows[b + 1] - rows[b];
      const bool last_band = (b + 1 == B);
      std::fill(hits.begin(), hits.end(), 0);
      prev_col.assign(H, 0);
      cur_col.assign(H, 0);
      if (affine) {
        prev_col_f.assign(H, simd::kNegInf);  // no run crosses the matrix edge
        cur_col_f.assign(H, simd::kNegInf);
      }
      std::int32_t prev_top = 0;  // passage(b-1)[j-1], 0 for column 1

      for (std::size_t c = 0; c < n_chunks; ++c) {
        const std::size_t col_lo = chunks[c];
        const std::size_t W = chunks[c + 1] - chunks[c];

        top_in.assign(W, 0);
        if (affine) top_in_e.assign(W, simd::kNegInf);
        if (b > 0) {
          node.waitcv(static_cast<int>(b - 1));
          passage[b - 1].get_range(node, col_lo, W, top_in.data());
          if (affine) {
            passage[b - 1].get_range(node, n + col_lo, W, top_in_e.data());
          }
        }
        bottom_out.resize(W);
        if (affine) bottom_out_e.resize(W);

        if (!column_checkpoints) {
          simd::DiagBlock blk;
          blk.a_seq = t.data() + col_lo;     // chunk columns on the lanes
          blk.a_len = W;
          blk.b_seq = s.data() + row_lo;     // band rows on the sweep
          blk.b_len = H;
          blk.bound_a = top_in.data();       // passage row above the band
          blk.bound_b = prev_col.data();     // last column of the prior chunk
          blk.corner = prev_top;
          blk.out_last_b = bottom_out.data();
          // out_last_a must not alias bound_b (the reference backend streams
          // columns in place), so land it in cur_col and swap afterwards.
          blk.out_last_a = cur_col.data();
          if (affine) {
            blk.bound_e = top_in_e.data();      // vertical runs from above
            blk.bound_f = prev_col_f.data();    // horizontal runs from the left
            blk.out_last_b_e = bottom_out_e.data();
            blk.out_last_a_f = cur_col_f.data();
          }
          col_hits.assign(W, 0);
          simd::block_count(blk, kernel_params, cfg.threshold, col_hits.data());
          for (std::size_t w = 0; w < W; ++w) {
            hits[(col_lo + w) / ipr] += col_hits[w];
          }
          prev_top = top_in[W - 1];
          std::swap(prev_col, cur_col);
          if (affine) std::swap(prev_col_f, cur_col_f);
        } else {
          // Scalar column sweep; under affine it runs the full Gotoh
          // recurrence so checkpoints can save the gap states the block
          // kernel never materializes per interior column.  Checkpoint
          // fragments double in length for affine: [H rows | F rows] for
          // columns (F crosses column boundaries rightward).
          const std::int32_t oe = cfg.scheme.gap_open + cfg.scheme.gap;
          const std::int32_t ext = cfg.scheme.gap;
          std::int32_t e_run = simd::kNegInf;  // E of the current column
          for (std::size_t w = 0; w < W; ++w) {
            const std::size_t j = col_lo + w + 1;  // 1-based matrix column
            const Base tj = t[j - 1];
            const std::int32_t top = top_in[w];
            const std::int32_t top_e = affine ? top_in_e[w] : simd::kNegInf;
            for (std::size_t r = 1; r <= H; ++r) {
              const std::size_t row = row_lo + r;  // 1-based matrix row
              const std::int32_t up = r == 1 ? top : cur_col[r - 2];
              const std::int32_t dg = r == 1 ? prev_top : prev_col[r - 2];
              const std::int32_t lf = prev_col[r - 1];
              std::int32_t v;
              if (affine) {
                const std::int32_t e_up = r == 1 ? top_e : e_run;
                e_run = std::max(up + oe, e_up + ext);        // E(row, j)
                const std::int32_t f = std::max(
                    lf + oe, prev_col_f[r - 1] + ext);        // F(row, j)
                cur_col_f[r - 1] = f;
                v = std::max(
                    {0, dg + cfg.scheme.substitution(s[row - 1], tj), e_run,
                     f});
              } else {
                v = std::max(
                    {0, dg + cfg.scheme.substitution(s[row - 1], tj),
                     up + cfg.scheme.gap, lf + cfg.scheme.gap});
              }
              cur_col[r - 1] = v;
              if (v >= cfg.threshold) ++hits[(j - 1) / ipr];
            }
            if (j % cfg.save_interleave == 0) {
              if (affine) {
                std::vector<std::int32_t> frag(cur_col);
                frag.insert(frag.end(), cur_col_f.begin(), cur_col_f.end());
                cfg.store->save(static_cast<std::uint32_t>(j),
                                static_cast<std::uint32_t>(row_lo + 1), frag);
              } else {
                cfg.store->save(static_cast<std::uint32_t>(j),
                                static_cast<std::uint32_t>(row_lo + 1),
                                cur_col);
              }
            }
            bottom_out[w] = cur_col[H - 1];
            if (affine) bottom_out_e[w] = e_run;  // E of the band's last row
            prev_top = top;
            std::swap(prev_col, cur_col);
            if (affine) std::swap(prev_col_f, cur_col_f);
          }
        }
        node.add_dp_cells(static_cast<std::uint64_t>(W) * H);

        if (cfg.row_store != nullptr) {
          // Passage-band checkpoint: this band's bottom row (global row
          // rows[b+1], 1-based), fragment starting at column col_lo+1.
          // Affine fragments are [H cols | E cols] — E crosses row
          // boundaries downward, which is what a reprocess resume needs.
          if (affine) {
            std::vector<std::int32_t> frag(bottom_out);
            frag.insert(frag.end(), bottom_out_e.begin(), bottom_out_e.end());
            cfg.row_store->save(static_cast<std::uint32_t>(rows[b + 1]),
                                static_cast<std::uint32_t>(col_lo + 1), frag);
          } else {
            cfg.row_store->save(static_cast<std::uint32_t>(rows[b + 1]),
                                static_cast<std::uint32_t>(col_lo + 1),
                                bottom_out);
          }
        }
        if (!last_band) {
          passage[b].put_range(node, col_lo, W, bottom_out.data());
          if (affine) {
            passage[b].put_range(node, n + col_lo, W, bottom_out_e.data());
          }
          node.setcv(static_cast<int>(b));
        }
      }
      result_rows[b].put_range(node, 0, groups, hits.data());
    }

    if (cfg.io_mode == IoMode::kDeferred && cfg.store != nullptr) {
      cfg.store->flush();
    }
    node.barrier();

    if (p == 0) {
      collected.resize(B);
      for (std::size_t b = 0; b < B; ++b) {
        collected[b].resize(groups);
        result_rows[b].get_range(node, 0, groups, collected[b].data());
      }
    }
  });

  if (cfg.io_mode == IoMode::kImmediate && cfg.store != nullptr) {
    cfg.store->flush();
  }
  result.result_matrix = std::move(collected);
  result.dsm_stats = cluster.stats();
  return result;
}

}  // namespace gdsm::core
