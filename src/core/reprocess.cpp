#include "core/reprocess.h"

#include <algorithm>
#include <stdexcept>

#include "simd/dispatch.h"

namespace gdsm::core {
namespace {

// Largest checkpoint index <= limit, or 0 (the zero boundary) if none.
std::uint32_t snap_anchor(const SavedFragments& frags, std::size_t limit) {
  std::uint32_t best = 0;
  for (const auto& [key, values] : frags) {
    if (key.first <= limit) best = std::max(best, key.first);
  }
  return best;
}

// Assembles boundary values at `index` (a column or passage row) covering
// positions [lo, hi] (1-based rows for a column, columns for a row).
// Affine checkpoint fragments carry two concatenated halves of equal
// length — [H | gap state] (F for columns, E for passage rows); `half`
// selects which one (0 = H).  Linear fragments are single-half.
std::vector<std::int32_t> assemble(const SavedFragments& frags,
                                   std::uint32_t index, std::size_t lo,
                                   std::size_t hi, const char* what,
                                   bool affine = false, int half = 0) {
  std::vector<std::int32_t> out(hi - lo + 1, 0);
  std::vector<bool> covered(out.size(), false);
  for (const auto& [key, values] : frags) {
    if (key.first != index) continue;
    const std::size_t begin = key.second;
    const std::size_t span = affine ? values.size() / 2 : values.size();
    const std::size_t base = static_cast<std::size_t>(half) * span;
    for (std::size_t k = 0; k < span; ++k) {
      const std::size_t pos = begin + k;
      if (pos >= lo && pos <= hi) {
        out[pos - lo] = values[base + k];
        covered[pos - lo] = true;
      }
    }
  }
  for (std::size_t k = 0; k < covered.size(); ++k) {
    if (!covered[k]) {
      throw std::runtime_error(
          std::string("reprocess_region: checkpoint ") + what + " " +
          std::to_string(index) + " does not cover position " +
          std::to_string(lo + k));
    }
  }
  return out;
}

}  // namespace

ReprocessResult reprocess_region(const Sequence& s, const Sequence& t,
                                 const SavedFragments& columns,
                                 const SavedFragments& passage_rows,
                                 const Subregion& region, int min_score,
                                 const ScoreScheme& scheme,
                                 std::size_t max_alignments) {
  if (region.row_lo == 0 || region.col_lo == 0 || region.row_lo > region.row_hi ||
      region.col_lo > region.col_hi || region.row_hi > s.size() ||
      region.col_hi > t.size()) {
    throw std::invalid_argument("reprocess_region: bad region");
  }
  const bool affine = scheme.affine();

  // Snap outward to the nearest checkpoints (0 = the zero border).
  const std::uint32_t anchor_col = snap_anchor(columns, region.col_lo - 1);
  const std::uint32_t anchor_row = snap_anchor(passage_rows, region.row_lo - 1);

  ReprocessResult res;
  res.computed = Subregion{static_cast<std::size_t>(anchor_row) + 1,
                           region.row_hi,
                           static_cast<std::size_t>(anchor_col) + 1,
                           region.col_hi};
  const std::size_t R = res.rows();
  const std::size_t C = res.cols();

  // Boundaries: left column (rows of the computed range) and top row
  // (columns of the computed range, plus the diagonal corner).  Under
  // affine the checkpoints also carry the gap state crossing them: F for
  // columns (horizontal runs continuing rightward), E for passage rows
  // (vertical runs continuing downward); the matrix edge is kNegInf (no
  // run crosses it).
  std::vector<std::int32_t> left_col(R, 0);
  std::vector<std::int32_t> left_col_f(R, simd::kNegInf);
  if (anchor_col > 0) {
    left_col = assemble(columns, anchor_col, res.computed.row_lo,
                        res.computed.row_hi, "column", affine, 0);
    if (affine) {
      left_col_f = assemble(columns, anchor_col, res.computed.row_lo,
                            res.computed.row_hi, "column", affine, 1);
    }
  }
  std::vector<std::int32_t> top_row(C, 0);
  std::vector<std::int32_t> top_row_e(C, simd::kNegInf);
  std::int32_t corner = 0;
  if (anchor_row > 0) {
    top_row = assemble(passage_rows, anchor_row, res.computed.col_lo,
                       res.computed.col_hi, "passage row", affine, 0);
    if (affine) {
      top_row_e = assemble(passage_rows, anchor_row, res.computed.col_lo,
                           res.computed.col_hi, "passage row", affine, 1);
    }
    if (anchor_col > 0) {
      corner = assemble(passage_rows, anchor_row, anchor_col, anchor_col,
                        "passage row", affine, 0)[0];
    }
  }

  // Score-only prescreen through the dispatched kernel: the snapped block's
  // boundaries are exactly a DiagBlock (columns on the lanes, rows on the
  // sweep), so one vectorized best-score pass tells whether any cell can
  // reach min_score before the scalar refill — whose full grid the traceback
  // (and the scores contract) still needs — decides about retrieval.
  simd::DiagBlock blk;
  blk.a_seq = t.data() + (res.computed.col_lo - 1);
  blk.a_len = C;
  blk.b_seq = s.data() + (res.computed.row_lo - 1);
  blk.b_len = R;
  blk.bound_a = top_row.data();
  blk.bound_b = left_col.data();
  blk.corner = corner;
  if (affine) {
    blk.bound_e = top_row_e.data();
    blk.bound_f = left_col_f.data();
  }
  const simd::ScoreParams sp{scheme.match, scheme.mismatch, scheme.gap,
                             scheme.gap_open};
  const bool any_candidate = simd::block_best(blk, sp).score >= min_score;

  // Exact DP refill of the subregion: linear recurrence, or the full Gotoh
  // three-matrix recurrence when the scheme is affine (the E/F grids are
  // also what the three-state traceback below walks).
  res.scores.assign(R * C, 0);
  auto cell = [&](std::size_t r, std::size_t c) -> std::int32_t& {
    return res.scores[r * C + c];
  };
  std::vector<std::int32_t> e_grid;
  std::vector<std::int32_t> f_grid;
  if (affine) {
    e_grid.assign(R * C, simd::kNegInf);
    f_grid.assign(R * C, simd::kNegInf);
  }
  auto e_at = [&](std::size_t r, std::size_t c) -> std::int32_t& {
    return e_grid[r * C + c];
  };
  auto f_at = [&](std::size_t r, std::size_t c) -> std::int32_t& {
    return f_grid[r * C + c];
  };
  const std::int32_t oe = scheme.gap_open + scheme.gap;
  const std::int32_t ext = scheme.gap;
  for (std::size_t r = 0; r < R; ++r) {
    const std::size_t row = res.computed.row_lo + r;  // 1-based
    const Base si = s[row - 1];
    for (std::size_t c = 0; c < C; ++c) {
      const std::size_t col = res.computed.col_lo + c;  // 1-based
      const std::int32_t up = r == 0 ? top_row[c] : cell(r - 1, c);
      const std::int32_t lf = c == 0 ? left_col[r] : cell(r, c - 1);
      const std::int32_t dg = r == 0 ? (c == 0 ? corner : top_row[c - 1])
                                     : (c == 0 ? (row - 1 == anchor_row
                                                      ? corner
                                                      : left_col[r - 1])
                                                : cell(r - 1, c - 1));
      if (affine) {
        const std::int32_t e_up = r == 0 ? top_row_e[c] : e_at(r - 1, c);
        const std::int32_t f_left = c == 0 ? left_col_f[r] : f_at(r, c - 1);
        const std::int32_t e = std::max(up + oe, e_up + ext);
        const std::int32_t f = std::max(lf + oe, f_left + ext);
        e_at(r, c) = e;
        f_at(r, c) = f;
        cell(r, c) =
            std::max({0, dg + scheme.substitution(si, t[col - 1]), e, f});
      } else {
        cell(r, c) = std::max({0, dg + scheme.substitution(si, t[col - 1]),
                               up + scheme.gap, lf + scheme.gap});
      }
    }
  }

  // Alignment retrieval: local-maxima end cells inside the REQUESTED region.
  struct End {
    std::int32_t score;
    std::size_t r, c;  // 0-based within the computed grid
  };
  std::vector<End> ends;
  if (!any_candidate) return res;
  for (std::size_t r = region.row_lo - res.computed.row_lo; r < R; ++r) {
    for (std::size_t c = region.col_lo - res.computed.col_lo; c < C; ++c) {
      const std::int32_t v = cell(r, c);
      if (v < min_score) continue;
      const bool extendable =
          (r + 1 < R && cell(r + 1, c) > v) || (c + 1 < C && cell(r, c + 1) > v) ||
          (r + 1 < R && c + 1 < C && cell(r + 1, c + 1) > v);
      if (!extendable) ends.push_back(End{v, r, c});
    }
  }
  std::sort(ends.begin(), ends.end(), [](const End& a, const End& b) {
    if (a.score != b.score) return a.score > b.score;
    if (a.r != b.r) return a.r < b.r;
    return a.c < b.c;
  });

  for (const End& e : ends) {
    if (res.alignments.size() >= max_alignments) break;
    // Traceback within the computed grid; boundary cells act as walls (an
    // alignment reaching them is reported from there — exact as long as the
    // snapped region padded the true start, which the zero cells of a local
    // alignment guarantee when min_score checkpoints ring the region).
    std::size_t r = e.r, c = e.c;
    std::vector<Op> rev;
    if (affine) {
      // Three-state Gotoh traceback over the H/E/F grids.  A gap run that
      // continues across the computed boundary acts as a wall, like the
      // boundary cells of the linear walk below.
      enum class St { kH, kE, kF };
      St st = St::kH;
      while (true) {
        if (st == St::kH) {
          const std::int32_t v = cell(r, c);
          if (v <= 0) break;
          if (r > 0 && c > 0 &&
              v == cell(r - 1, c - 1) +
                       scheme.substitution(s[res.computed.row_lo + r - 1],
                                           t[res.computed.col_lo + c - 1])) {
            rev.push_back(Op::Diag);
            --r;
            --c;
            continue;
          }
          if (v == e_at(r, c)) {
            st = St::kE;
            continue;
          }
          if (v == f_at(r, c)) {
            st = St::kF;
            continue;
          }
          break;  // boundary-fed diagonal: the region edge is a wall
        }
        if (st == St::kE) {
          if (r == 0) break;  // vertical run continues above the region
          const std::int32_t ev = e_at(r, c);
          rev.push_back(Op::Up);
          if (ev == e_at(r - 1, c) + ext) {
            --r;  // the run keeps going up
          } else {
            --r;  // ev == cell(r-1, c) + oe: the run opened here
            st = St::kH;
          }
          continue;
        }
        // st == St::kF
        if (c == 0) break;  // horizontal run continues left of the region
        const std::int32_t fv = f_at(r, c);
        rev.push_back(Op::Left);
        if (fv == f_at(r, c - 1) + ext) {
          --c;
        } else {
          --c;  // fv == cell(r, c-1) + oe
          st = St::kH;
        }
      }
    } else {
      while (true) {
        const std::int32_t v = cell(r, c);
        if (v == 0) break;
        // Grid cell (r, c) is matrix cell (row_lo + r, col_lo + c), 1-based,
        // i.e. characters s[row_lo + r - 1] and t[col_lo + c - 1].
        if (r > 0 && c > 0 &&
            v == cell(r - 1, c - 1) +
                     scheme.substitution(s[res.computed.row_lo + r - 1],
                                         t[res.computed.col_lo + c - 1])) {
          rev.push_back(Op::Diag);
          --r;
          --c;
          continue;
        }
        if (r > 0 && v == cell(r - 1, c) + scheme.gap) {
          rev.push_back(Op::Up);
          --r;
          continue;
        }
        if (c > 0 && v == cell(r, c - 1) + scheme.gap) {
          rev.push_back(Op::Left);
          --c;
          continue;
        }
        break;  // reached the region boundary
      }
    }
    Alignment al;
    al.score = e.score;
    al.s_begin = res.computed.row_lo + r;  // 0-based first aligned char
    al.t_begin = res.computed.col_lo + c;
    al.ops.assign(rev.rbegin(), rev.rend());
    const bool overlaps = std::any_of(
        res.alignments.begin(), res.alignments.end(), [&](const Alignment& p) {
          const bool s_disjoint = al.s_end() <= p.s_begin || p.s_end() <= al.s_begin;
          const bool t_disjoint = al.t_end() <= p.t_begin || p.t_end() <= al.t_begin;
          return !(s_disjoint || t_disjoint);
        });
    if (!overlaps) res.alignments.push_back(std::move(al));
  }
  return res;
}

}  // namespace gdsm::core
