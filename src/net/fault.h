// Deterministic fault injection for the in-process interconnect.
//
// The real cluster of the paper ran JIAJIA over UDP: messages were lost,
// delayed, reordered and duplicated by the network, and a sequenced
// retransmission layer underneath the DSM protocol hid all of it.  The
// in-process Transport is that reliable layer, so fault injection lives
// inside it: a FaultPlan describes the misbehaviour of the simulated wire
// (drop-with-retransmit, extra latency, reorder holds, duplicates, per-node
// partition windows) and the transport absorbs it exactly as JIAJIA's comm
// layer would — every message is still delivered exactly once and per
// (src, dst) flows stay FIFO, but delivery *timing* across flows is
// perturbed and every absorbed fault is counted.
//
// All decisions derive from a single uint64 seed and a per-source message
// sequence number, so a (seed, plan) pair replays the same fault pressure;
// tools/fuzz_align prints exactly that pair when a divergence is found.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/message.h"

namespace gdsm::net {

/// Messages to or from `node` whose send falls inside [from_ms, to_ms)
/// (milliseconds since the transport started) are held until the window
/// closes — the in-process stand-in for a workstation dropping off the
/// switch and the retransmission layer covering the gap.
struct PartitionWindow {
  int node = -1;
  std::uint64_t from_ms = 0;
  std::uint64_t to_ms = 0;

  friend bool operator==(const PartitionWindow&, const PartitionWindow&) = default;
};

/// A seeded description of simulated network misbehaviour.  Rates are
/// per-message probabilities in [0, 1]; a default-constructed plan injects
/// nothing and costs nothing.
struct FaultPlan {
  std::uint64_t seed = 1;

  /// Datagram loss: the message is "dropped" and retransmitted by the
  /// reliable layer.  Each loss costs 1..drop_retries simulated
  /// retransmissions of retry_backoff_us each before delivery.
  double drop_rate = 0.0;
  std::uint32_t drop_retries = 3;
  std::uint32_t retry_backoff_us = 150;

  /// Plain extra latency, uniform in [0, delay_max_us].
  double delay_rate = 0.0;
  std::uint32_t delay_max_us = 400;

  /// Reorder hold: the message is parked long enough for traffic on *other*
  /// flows to overtake it (per-flow FIFO is preserved, as the sequenced
  /// delivery layer guarantees).
  double reorder_rate = 0.0;
  std::uint32_t reorder_hold_us = 600;

  /// Spurious duplicate datagrams, discarded by the sequence-number dedupe
  /// edge (counted, never delivered twice).
  double duplicate_rate = 0.0;

  /// Per-node partition windows (see PartitionWindow).
  std::vector<PartitionWindow> partitions;

  /// True when any fault can actually fire.
  bool enabled() const noexcept;

  /// Canonical "drop=0.05,retries=3,delay=0.2,part=1@5-25" spec; parse()
  /// round-trips it.  A default plan renders as "none".
  std::string to_string() const;

  /// Parses a spec produced by to_string() (or written by hand — see
  /// docs/TESTING.md for the grammar).  Throws std::invalid_argument on
  /// malformed input.  "none" and "" yield the default plan.
  static FaultPlan parse(const std::string& spec);

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Snapshot of everything the injection layer absorbed.
struct FaultCounters {
  std::uint64_t faulted_messages = 0;   ///< messages that hit >= 1 fault
  std::uint64_t drops = 0;              ///< simulated datagram losses
  std::uint64_t retransmits = 0;        ///< simulated retransmissions
  std::uint64_t delays = 0;             ///< plain latency injections
  std::uint64_t reorder_holds = 0;      ///< messages parked for overtaking
  std::uint64_t duplicates_suppressed = 0;  ///< dup datagrams deduped
  std::uint64_t partition_stalls = 0;   ///< messages held by a partition

  std::uint64_t total() const noexcept {
    return drops + retransmits + delays + reorder_holds +
           duplicates_suppressed + partition_stalls;
  }
  FaultCounters& operator+=(const FaultCounters& o) noexcept;

  friend bool operator==(const FaultCounters&, const FaultCounters&) = default;
};

/// The injection engine the Transport drives.  submit() either schedules the
/// message on the internal delivery thread (returning true) or declines
/// (returning false: the caller delivers inline, the fast path).  Per
/// (src, dst) flows are delivered in submission order no matter what delays
/// individual messages picked up.
class FaultInjector {
 public:
  /// `deliver` is invoked (on the injector's delivery thread) for every
  /// scheduled message once its delay elapses.
  FaultInjector(FaultPlan plan, int n_nodes,
                std::function<void(Message)> deliver);
  ~FaultInjector();

  const FaultPlan& plan() const noexcept { return plan_; }

  /// Decides this message's fate.  Returns false when the message suffered
  /// no delay AND its flow has nothing pending (caller delivers inline).
  bool submit(Message& msg);

  FaultCounters counters() const;

  /// Blocks until everything currently pending has been delivered (early,
  /// ignoring remaining deadlines).  Used between SPMD runs so a delayed
  /// message from one run can never leak into the next.
  void drain();

  /// Delivers everything still pending immediately and joins the delivery
  /// thread.  Idempotent; submit() afterwards always returns false.
  void flush_and_stop();

 private:
  struct Pending {
    std::chrono::steady_clock::time_point when;
    std::uint64_t order;  ///< global submission tick: FIFO tie-break
    Message msg;
  };
  struct Later {
    bool operator()(const Pending& a, const Pending& b) const {
      return a.when != b.when ? a.when > b.when : a.order > b.order;
    }
  };

  std::uint64_t decide_delay_us(const Message& msg, std::uint64_t src_seq);
  void delivery_loop();

  FaultPlan plan_;
  int n_nodes_;
  std::function<void(Message)> deliver_;
  std::chrono::steady_clock::time_point epoch_;

  std::vector<std::atomic<std::uint64_t>> src_seq_;  ///< per-source counter

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable drained_cv_;
  std::priority_queue<Pending, std::vector<Pending>, Later> heap_;
  /// Flow key -> (pending message count, earliest next deliver time).  A
  /// flow with pending messages forces later messages onto the heap too, so
  /// FIFO within the flow survives any mix of per-message delays.
  std::unordered_map<std::uint64_t, std::pair<std::size_t,
      std::chrono::steady_clock::time_point>> flows_;
  std::uint64_t next_order_ = 0;
  bool stopped_ = false;
  bool draining_ = false;

  FaultCounters counters_;  ///< guarded by mu_
  std::thread thread_;
};

}  // namespace gdsm::net
