#include "net/transport.h"

#include <cassert>

namespace gdsm::net {

const char* msg_type_name(MsgType t) noexcept {
  switch (t) {
    case MsgType::kGetPage: return "GETPAGE";
    case MsgType::kPageData: return "PAGEDATA";
    case MsgType::kDiff: return "DIFF";
    case MsgType::kDiffAck: return "DIFFACK";
    case MsgType::kAcquire: return "ACQ";
    case MsgType::kAcquireGrant: return "ACQGRANT";
    case MsgType::kRelease: return "REL";
    case MsgType::kBarrier: return "BARR";
    case MsgType::kBarrierGrant: return "BARRGRANT";
    case MsgType::kSetCv: return "SETCV";
    case MsgType::kWaitCv: return "WAITCV";
    case MsgType::kCvGrant: return "CVGRANT";
    case MsgType::kAllocate: return "ALLOC";
    case MsgType::kAllocateReply: return "ALLOCREPLY";
    case MsgType::kUserData: return "USERDATA";
    case MsgType::kStop: return "STOP";
    case MsgType::kDiffBatch: return "DIFFBATCH";
    case MsgType::kDiffBatchAck: return "DIFFBATCHACK";
    case MsgType::kGetPages: return "GETPAGES";
    case MsgType::kPagesData: return "PAGESDATA";
  }
  return "?";
}

std::uint64_t TrafficCounters::total_messages() const noexcept {
  std::uint64_t total = 0;
  for (auto v : messages) total += v;
  return total;
}

std::uint64_t TrafficCounters::total_bytes() const noexcept {
  std::uint64_t total = 0;
  for (auto v : bytes) total += v;
  return total;
}

TrafficCounters& TrafficCounters::operator+=(const TrafficCounters& other) noexcept {
  for (int i = 0; i < kNumMsgTypes; ++i) {
    messages[i] += other.messages[i];
    bytes[i] += other.bytes[i];
  }
  return *this;
}

Transport::Transport(int n_nodes, FaultPlan faults)
    : n_nodes_(n_nodes), fault_plan_(std::move(faults)) {
  boxes_.reserve(static_cast<std::size_t>(n_nodes));
  for (int i = 0; i < n_nodes; ++i) boxes_.push_back(std::make_unique<NodeBoxes>());
  if (fault_plan_.enabled()) {
    injector_ = std::make_unique<FaultInjector>(
        fault_plan_, n_nodes, [this](Message msg) { deliver(std::move(msg)); });
  }
}

Transport::~Transport() {
  if (injector_) injector_->flush_and_stop();
}

void Transport::deliver(Message msg) {
  auto& to = *boxes_[msg.dst];
  (msg.to_reply_box ? to.reply : to.service).push(std::move(msg));
}

void Transport::send(Message msg) {
  assert(msg.dst >= 0 && msg.dst < n_nodes_);
  if (msg.src >= 0 && msg.src != msg.dst) {
    auto& from = *boxes_[msg.src];
    const auto idx = static_cast<std::size_t>(msg.type);
    from.sent_messages[idx].fetch_add(1, std::memory_order_relaxed);
    from.sent_bytes[idx].fetch_add(msg.wire_size(), std::memory_order_relaxed);
  }
  // Control messages (kStop, src -1) bypass injection; everything else may
  // be scheduled onto the injector's delivery thread.
  if (injector_ && msg.src >= 0 && msg.type != MsgType::kStop &&
      injector_->submit(msg)) {
    return;
  }
  deliver(std::move(msg));
}

FaultCounters Transport::fault_counters() const {
  return injector_ ? injector_->counters() : FaultCounters{};
}

void Transport::quiesce() {
  if (injector_) injector_->drain();
}

void Transport::shutdown() {
  // Flush pending (delayed) deliveries before closing, so no message is
  // lost even when a partition window outlives the program.
  if (injector_) injector_->flush_and_stop();
  for (auto& b : boxes_) {
    b->service.close();
    b->reply.close();
  }
}

void Transport::abort_requests() {
  for (auto& b : boxes_) b->reply.close();
}

void Transport::reset_reply_boxes() {
  for (auto& b : boxes_) {
    b->reply.drain();
    b->reply.reopen();
  }
}

TrafficCounters Transport::counters(int node) const {
  TrafficCounters out;
  const auto& b = *boxes_[node];
  for (int i = 0; i < kNumMsgTypes; ++i) {
    out.messages[i] = b.sent_messages[i].load(std::memory_order_relaxed);
    out.bytes[i] = b.sent_bytes[i].load(std::memory_order_relaxed);
  }
  return out;
}

TrafficCounters Transport::total_counters() const {
  TrafficCounters out;
  for (int n = 0; n < n_nodes_; ++n) out += counters(n);
  return out;
}

std::vector<TrafficCounters> Transport::per_node_counters() const {
  std::vector<TrafficCounters> out;
  out.reserve(static_cast<std::size_t>(n_nodes_));
  for (int n = 0; n < n_nodes_; ++n) out.push_back(counters(n));
  return out;
}

}  // namespace gdsm::net
