// Blocking MPSC mailbox: the per-node message queue.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

#include "net/message.h"

namespace gdsm::net {

/// Unbounded blocking queue of messages.  Multiple producers (any node's
/// threads), one logical consumer (the owning node's service or application
/// thread).  close() wakes the consumer, which then drains and sees
/// std::nullopt.
class Mailbox {
 public:
  void push(Message msg) {
    {
      const std::scoped_lock lock(mu_);
      queue_.push_back(std::move(msg));
    }
    cv_.notify_one();
  }

  /// Blocks until a message arrives or the box is closed and drained.
  std::optional<Message> pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Non-blocking pop: a queued message if one is already there, else
  /// nullopt immediately (open or closed alike).  The DSM prefetch layer
  /// uses this to opportunistically absorb read-ahead replies between
  /// blocking requests.
  std::optional<Message> try_pop() {
    const std::scoped_lock lock(mu_);
    if (queue_.empty()) return std::nullopt;
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  /// Like pop(), but gives up after `timeout`.  Returns nullopt on timeout
  /// with *closed untouched, or on close-and-drained with *closed set true —
  /// the DSM retry layer needs to tell the two apart.
  std::optional<Message> pop_for(std::chrono::microseconds timeout,
                                 bool* closed) {
    std::unique_lock lock(mu_);
    if (!cv_.wait_for(lock, timeout,
                      [&] { return !queue_.empty() || closed_; })) {
      return std::nullopt;  // timed out
    }
    if (queue_.empty()) {
      if (closed != nullptr) *closed = true;
      return std::nullopt;
    }
    Message msg = std::move(queue_.front());
    queue_.pop_front();
    return msg;
  }

  void close() {
    {
      const std::scoped_lock lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Re-arms a closed box so pop() blocks again.  Part of the cluster's
  /// failed-program recovery: reply boxes are closed to unwind blocked
  /// requesters, then reopened before the next program is admitted.
  void reopen() {
    const std::scoped_lock lock(mu_);
    closed_ = false;
  }

  /// Discards every queued message; returns how many were dropped.
  std::size_t drain() {
    const std::scoped_lock lock(mu_);
    const std::size_t n = queue_.size();
    queue_.clear();
    return n;
  }

  std::size_t size() const {
    const std::scoped_lock lock(mu_);
    return queue_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

}  // namespace gdsm::net
