#include "net/fault.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gdsm::net {
namespace {

// SplitMix64: the decision stream.  Every fault class draws from its own
// step of the chain so enabling one fault never shifts another's draws.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

double parse_rate(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  double rate = 0;
  try {
    rate = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || !(rate >= 0.0) || rate > 1.0) {
    throw std::invalid_argument("FaultPlan: bad rate for '" + key +
                                "': " + value);
  }
  return rate;
}

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  std::size_t pos = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (value.empty() || pos != value.size()) {
    throw std::invalid_argument("FaultPlan: bad integer for '" + key +
                                "': " + value);
  }
  return v;
}

void format_rate(std::ostringstream& out, double rate) {
  // Shortest representation that std::stod parses back exactly enough:
  // rates are user-specified decimals, print up to 6 significant digits.
  std::ostringstream tmp;
  tmp << rate;
  out << tmp.str();
}

}  // namespace

bool FaultPlan::enabled() const noexcept {
  return drop_rate > 0 || delay_rate > 0 || reorder_rate > 0 ||
         duplicate_rate > 0 || !partitions.empty();
}

std::string FaultPlan::to_string() const {
  if (!enabled()) return "none";
  std::ostringstream out;
  const char* sep = "";
  auto field = [&](const char* key) -> std::ostringstream& {
    out << sep << key << '=';
    sep = ",";
    return out;
  };
  out << "seed=" << seed;
  sep = ",";
  if (drop_rate > 0) {
    format_rate(field("drop"), drop_rate);
    if (drop_retries != FaultPlan{}.drop_retries) field("retries") << drop_retries;
    if (retry_backoff_us != FaultPlan{}.retry_backoff_us) {
      field("backoff_us") << retry_backoff_us;
    }
  }
  if (delay_rate > 0) {
    format_rate(field("delay"), delay_rate);
    if (delay_max_us != FaultPlan{}.delay_max_us) field("delay_max_us") << delay_max_us;
  }
  if (reorder_rate > 0) {
    format_rate(field("reorder"), reorder_rate);
    if (reorder_hold_us != FaultPlan{}.reorder_hold_us) {
      field("hold_us") << reorder_hold_us;
    }
  }
  if (duplicate_rate > 0) format_rate(field("dup"), duplicate_rate);
  for (const PartitionWindow& w : partitions) {
    field("part") << w.node << '@' << w.from_ms << '-' << w.to_ms;
  }
  return out.str();
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty() || spec == "none") return plan;
  std::istringstream in(spec);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                  item + "'");
    }
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(key, value);
    } else if (key == "drop") {
      plan.drop_rate = parse_rate(key, value);
    } else if (key == "retries") {
      plan.drop_retries = static_cast<std::uint32_t>(parse_u64(key, value));
      if (plan.drop_retries == 0) {
        throw std::invalid_argument("FaultPlan: retries must be >= 1");
      }
    } else if (key == "backoff_us") {
      plan.retry_backoff_us = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "delay") {
      plan.delay_rate = parse_rate(key, value);
    } else if (key == "delay_max_us") {
      plan.delay_max_us = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "reorder") {
      plan.reorder_rate = parse_rate(key, value);
    } else if (key == "hold_us") {
      plan.reorder_hold_us = static_cast<std::uint32_t>(parse_u64(key, value));
    } else if (key == "dup") {
      plan.duplicate_rate = parse_rate(key, value);
    } else if (key == "part") {
      const std::size_t at = value.find('@');
      const std::size_t dash = value.find('-', at == std::string::npos ? 0 : at);
      if (at == std::string::npos || dash == std::string::npos || dash < at) {
        throw std::invalid_argument(
            "FaultPlan: partition must be node@from_ms-to_ms, got '" + value +
            "'");
      }
      PartitionWindow w;
      w.node = static_cast<int>(parse_u64(key, value.substr(0, at)));
      w.from_ms = parse_u64(key, value.substr(at + 1, dash - at - 1));
      w.to_ms = parse_u64(key, value.substr(dash + 1));
      if (w.to_ms <= w.from_ms) {
        throw std::invalid_argument("FaultPlan: empty partition window '" +
                                    value + "'");
      }
      plan.partitions.push_back(w);
    } else {
      throw std::invalid_argument("FaultPlan: unknown key '" + key + "'");
    }
  }
  return plan;
}

FaultCounters& FaultCounters::operator+=(const FaultCounters& o) noexcept {
  faulted_messages += o.faulted_messages;
  drops += o.drops;
  retransmits += o.retransmits;
  delays += o.delays;
  reorder_holds += o.reorder_holds;
  duplicates_suppressed += o.duplicates_suppressed;
  partition_stalls += o.partition_stalls;
  return *this;
}

FaultInjector::FaultInjector(FaultPlan plan, int n_nodes,
                             std::function<void(Message)> deliver)
    : plan_(std::move(plan)),
      n_nodes_(n_nodes),
      deliver_(std::move(deliver)),
      epoch_(std::chrono::steady_clock::now()),
      src_seq_(static_cast<std::size_t>(n_nodes)) {
  thread_ = std::thread([this] { delivery_loop(); });
}

FaultInjector::~FaultInjector() { flush_and_stop(); }

std::uint64_t FaultInjector::decide_delay_us(const Message& msg,
                                             std::uint64_t src_seq) {
  // One decision chain per message, keyed by (seed, src, dst, type, seq):
  // the same source-program send sequence replays the same faults.
  std::uint64_t x = plan_.seed;
  x ^= 0x517cc1b727220a95ull * (static_cast<std::uint64_t>(msg.src) + 1);
  x ^= 0x2545f4914f6cdd1dull * (static_cast<std::uint64_t>(msg.dst) + 1);
  x ^= 0xd6e8feb86659fd93ull * (static_cast<std::uint64_t>(msg.type) + 1);
  x ^= 0x94d049bb133111ebull * (src_seq + 1);

  std::uint64_t delay_us = 0;
  FaultCounters local;
  if (const std::uint64_t h = splitmix64(x);
      plan_.drop_rate > 0 && to_unit(h) < plan_.drop_rate) {
    const std::uint32_t resends =
        1 + static_cast<std::uint32_t>(splitmix64(x) % plan_.drop_retries);
    ++local.drops;
    local.retransmits += resends;
    delay_us += std::uint64_t{resends} * plan_.retry_backoff_us;
  } else {
    (void)splitmix64(x);  // keep the chain aligned
  }
  if (const std::uint64_t h = splitmix64(x);
      plan_.delay_rate > 0 && to_unit(h) < plan_.delay_rate) {
    ++local.delays;
    delay_us += splitmix64(x) % (std::uint64_t{plan_.delay_max_us} + 1);
  } else {
    (void)splitmix64(x);
  }
  if (const std::uint64_t h = splitmix64(x);
      plan_.reorder_rate > 0 && to_unit(h) < plan_.reorder_rate) {
    ++local.reorder_holds;
    delay_us += plan_.reorder_hold_us;
  }
  if (const std::uint64_t h = splitmix64(x);
      plan_.duplicate_rate > 0 && to_unit(h) < plan_.duplicate_rate) {
    // The dup datagram dies at the sequence-number dedupe edge; only the
    // counter observes it.
    ++local.duplicates_suppressed;
  }
  if (!plan_.partitions.empty()) {
    const auto now_ms = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
    for (const PartitionWindow& w : plan_.partitions) {
      if ((w.node == msg.src || w.node == msg.dst) && now_ms >= w.from_ms &&
          now_ms < w.to_ms) {
        ++local.partition_stalls;
        delay_us = std::max(delay_us, (w.to_ms - now_ms) * 1000);
      }
    }
  }
  if (local.total() > 0) {
    ++local.faulted_messages;
    const std::scoped_lock lock(mu_);
    counters_ += local;
  }
  return delay_us;
}

bool FaultInjector::submit(Message& msg) {
  const std::uint64_t seq = src_seq_[static_cast<std::size_t>(msg.src)]
                                .fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t delay_us = decide_delay_us(msg, seq);
  const std::uint64_t flow =
      static_cast<std::uint64_t>(msg.src) *
          static_cast<std::uint64_t>(n_nodes_) +
      static_cast<std::uint64_t>(msg.dst);

  std::unique_lock lock(mu_);
  if (stopped_) return false;
  auto it = flows_.find(flow);
  const bool flow_pending = it != flows_.end() && it->second.first > 0;
  if (delay_us == 0 && !flow_pending) return false;  // fast path: in order

  const auto now = std::chrono::steady_clock::now();
  auto when = now + std::chrono::microseconds(delay_us);
  if (it == flows_.end()) it = flows_.emplace(flow, std::make_pair(0u, now)).first;
  // FIFO within the flow: never deliver before the previously scheduled
  // message of the same flow.
  when = std::max(when, it->second.second);
  it->second.first += 1;
  it->second.second = when;
  heap_.push(Pending{when, next_order_++, std::move(msg)});
  lock.unlock();
  cv_.notify_one();
  return true;
}

void FaultInjector::delivery_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (heap_.empty()) {
      if (flows_.empty()) drained_cv_.notify_all();
      if (stopped_) return;
      // An empty heap satisfies drain()'s predicate already, so block even
      // while draining_ — waking here with nothing to deliver would spin
      // without ever releasing mu_, starving drain() forever.
      cv_.wait(lock, [&] { return stopped_ || !heap_.empty(); });
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    const auto when = heap_.top().when;
    if (!stopped_ && !draining_ && when > now) {
      cv_.wait_until(lock, when);
      continue;
    }
    // stopped_/draining_: deliver immediately regardless of deadlines
    // (still in (when, order) order, preserving flow FIFO).
    Message msg = std::move(const_cast<Pending&>(heap_.top()).msg);
    heap_.pop();
    const std::uint64_t flow =
        static_cast<std::uint64_t>(msg.src) *
            static_cast<std::uint64_t>(n_nodes_) +
        static_cast<std::uint64_t>(msg.dst);
    lock.unlock();
    deliver_(std::move(msg));
    lock.lock();
    // Decrement only after delivery completed: a concurrent submit() on the
    // same flow must keep scheduling (not deliver inline) until the mailbox
    // push above is done, or it could overtake us inside the flow.
    auto it = flows_.find(flow);
    if (it != flows_.end() && --it->second.first == 0) flows_.erase(it);
    if (heap_.empty() && flows_.empty()) drained_cv_.notify_all();
  }
}

void FaultInjector::drain() {
  std::unique_lock lock(mu_);
  if (stopped_) return;
  draining_ = true;
  cv_.notify_all();
  drained_cv_.wait(lock, [&] { return heap_.empty() && flows_.empty(); });
  draining_ = false;
}

FaultCounters FaultInjector::counters() const {
  const std::scoped_lock lock(mu_);
  return counters_;
}

void FaultInjector::flush_and_stop() {
  {
    const std::scoped_lock lock(mu_);
    if (stopped_ && !thread_.joinable()) return;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace gdsm::net
