// Byte-level framing of protocol messages for a real socket data plane.
//
// The in-process transport moves net::Message structs between mailboxes, so
// nothing ever needed a serialized form.  The multi-process DSM backend
// (src/dsm/proc) sends the same messages across Unix-domain stream sockets,
// which requires a stable byte encoding plus explicit framing (a stream has
// no record boundaries).  tests/wire_test.cpp round-trips every message type
// through this encoding before it is trusted across a process boundary.
//
// Frame layout (all integers little-endian, fixed width):
//   u32  body_len          (bytes following this field)
//   u8   kind              (FrameKind)
//   ...  body
//
// Message body (kind == kMessage):
//   i32 src | i32 dst | u8 type | u8 to_reply_box | u64 a | u64 b | u64 c |
//   u32 payload_len | payload bytes
#pragma once

#include <cstdint>
#include <exception>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/message.h"

namespace gdsm::net {

/// What a frame carries.  kMessage wraps a protocol Message; the others are
/// the supervisor <-> node-process control channel of the process backend.
enum class FrameKind : std::uint8_t {
  kMessage = 0,  ///< a net::Message (routed node -> node by the supervisor)
  kDone = 1,     ///< node process: program finished (payload empty on
                 ///< success; on failure [u8 ErrorKind][what bytes], see
                 ///< encode_error_body)
  kStats = 2,    ///< node process: final NodeStats blob, then exit
  kAbort = 3,    ///< supervisor: unwind — close your reply box (payload =
                 ///< human-readable reason)
  kHalt = 4,     ///< supervisor: job over — stop the service loop, send stats
  kDrained = 5,  ///< node process: ack of a kStop drain marker — everything
                 ///< queued before it has been fully handled
};

/// Upper bound on a frame body accepted by decode/read (corruption guard;
/// generous: a max-size kPagesData batch is ~16 MiB).
inline constexpr std::uint32_t kMaxFrameBody = 64u * 1024 * 1024;

/// Exception taxonomy carried across the process boundary in a kDone frame,
/// so a child's failure rethrows in the parent as the type the program
/// actually threw instead of degrading everything to runtime_error.  The
/// vocabulary covers the standard hierarchy the DSM programs use; kSystem
/// marks failures synthesized by the supervisor itself (child death, torn
/// socket), and kUnknown is a non-std::exception throw.  make_error
/// reconstructs kSystem and kUnknown as plain runtime_error — the original
/// type (if any) died with the process.
enum class ErrorKind : std::uint8_t {
  kRuntime = 0,         ///< std::runtime_error (and unlisted derivatives)
  kLogic = 1,           ///< std::logic_error (and unlisted derivatives)
  kInvalidArgument = 2, ///< std::invalid_argument
  kDomain = 3,          ///< std::domain_error
  kLength = 4,          ///< std::length_error
  kOutOfRange = 5,      ///< std::out_of_range
  kRange = 6,           ///< std::range_error
  kOverflow = 7,        ///< std::overflow_error
  kUnderflow = 8,       ///< std::underflow_error
  kBadAlloc = 9,        ///< std::bad_alloc (message replaces the original)
  kSystem = 10,         ///< supervisor-synthesized (peer death, torn frame)
  kUnknown = 11,        ///< catch (...) — not a std::exception
};

/// Stable lower-case tag ("runtime", "invalid_argument", ...) for logs and
/// combined failure messages.
const char* error_kind_name(ErrorKind kind);

/// Most-derived-first classification of a live exception object.
ErrorKind classify_error(const std::exception& e);

/// Rebuilds a throwable exception of the tagged type carrying `what`.
/// kSystem/kUnknown/kBadAlloc come back as runtime_error (bad_alloc cannot
/// carry a message; the original object is gone anyway).
std::exception_ptr make_error(ErrorKind kind, const std::string& what);

/// kDone failure body: [u8 kind][what bytes] (never empty — success is the
/// empty body).  decode tolerates legacy kind-less bodies by mapping them
/// to kRuntime with the whole body as the message.
std::vector<std::byte> encode_error_body(ErrorKind kind,
                                         std::string_view what);
std::pair<ErrorKind, std::string> decode_error_body(const std::byte* body,
                                                    std::size_t len);

/// Appends one full frame (length prefix + kind + body) to `out`.
void append_frame(std::vector<std::byte>& out, FrameKind kind,
                  const std::byte* body, std::size_t body_len);

/// Serializes `msg` as a kMessage frame appended to `out`.
void append_message_frame(std::vector<std::byte>& out, const Message& msg);

/// Encodes just the message body (no frame header); append_message_frame
/// composes this with append_frame.  Exposed for the round-trip tests.
std::vector<std::byte> encode_message(const Message& msg);

/// Decodes a message body produced by encode_message.  Throws
/// std::runtime_error on truncated or malformed input.
Message decode_message(const std::byte* body, std::size_t len);
Message decode_message(const std::vector<std::byte>& body);

/// One parsed frame.
struct Frame {
  FrameKind kind = FrameKind::kMessage;
  std::vector<std::byte> body;
};

/// Blocking exact-length read/write helpers over a socket fd, EINTR-safe.
/// read_frame returns nullopt on clean EOF at a frame boundary and throws on
/// mid-frame EOF, oversized frames, or I/O errors.  write_frame throws on
/// error (EPIPE et al. — the caller maps that to peer death).
std::optional<Frame> read_frame(int fd);
void write_frame(int fd, FrameKind kind, const std::byte* body,
                 std::size_t body_len);
void write_message_frame(int fd, const Message& msg);

}  // namespace gdsm::net
