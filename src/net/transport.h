// In-process cluster interconnect with per-message accounting.
//
// Every node owns two mailboxes: a *service* box (incoming protocol
// requests, drained by the node's service thread — the stand-in for
// JIAJIA's SIGIO handler) and a *reply* box (responses to the node's own
// blocking requests, drained by its application thread).  Statistics mirror
// what would cross a real 100 Mbps Ethernet and drive the simulator's
// calibration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/mailbox.h"
#include "net/message.h"

namespace gdsm::net {

/// Message/byte counters per message type, snapshot-able.
struct TrafficCounters {
  std::array<std::uint64_t, kNumMsgTypes> messages{};
  std::array<std::uint64_t, kNumMsgTypes> bytes{};

  std::uint64_t total_messages() const noexcept;
  std::uint64_t total_bytes() const noexcept;
  TrafficCounters& operator+=(const TrafficCounters& other) noexcept;
};

class Transport {
 public:
  explicit Transport(int n_nodes);

  int nodes() const noexcept { return n_nodes_; }

  /// Routes `msg` to the destination's service or reply box and records the
  /// traffic against the *source* node.
  void send(Message msg);

  Mailbox& service_box(int node) { return boxes_[node]->service; }
  Mailbox& reply_box(int node) { return boxes_[node]->reply; }

  /// Closes every mailbox (service loops see nullopt and exit).
  void shutdown();

  /// Per-source-node traffic snapshot.
  TrafficCounters counters(int node) const;
  TrafficCounters total_counters() const;
  /// Snapshot of every node's counters at once (index = source node) — the
  /// hook the observability layer (src/obs) serializes into run reports.
  std::vector<TrafficCounters> per_node_counters() const;

 private:
  struct NodeBoxes {
    Mailbox service;
    Mailbox reply;
    std::array<std::atomic<std::uint64_t>, kNumMsgTypes> sent_messages{};
    std::array<std::atomic<std::uint64_t>, kNumMsgTypes> sent_bytes{};
  };
  int n_nodes_;
  std::vector<std::unique_ptr<NodeBoxes>> boxes_;
};

}  // namespace gdsm::net
