// In-process cluster interconnect with per-message accounting.
//
// Every node owns two mailboxes: a *service* box (incoming protocol
// requests, drained by the node's service thread — the stand-in for
// JIAJIA's SIGIO handler) and a *reply* box (responses to the node's own
// blocking requests, drained by its application thread).  Statistics mirror
// what would cross a real 100 Mbps Ethernet and drive the simulator's
// calibration.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/fault.h"
#include "net/mailbox.h"
#include "net/message.h"

namespace gdsm::net {

/// Message/byte counters per message type, snapshot-able.
struct TrafficCounters {
  std::array<std::uint64_t, kNumMsgTypes> messages{};
  std::array<std::uint64_t, kNumMsgTypes> bytes{};

  std::uint64_t total_messages() const noexcept;
  std::uint64_t total_bytes() const noexcept;
  TrafficCounters& operator+=(const TrafficCounters& other) noexcept;
};

class Transport {
 public:
  /// A transport with an enabled `faults` plan simulates the plan's network
  /// misbehaviour (see net/fault.h) while still guaranteeing exactly-once,
  /// per-flow-FIFO delivery; a default plan adds zero overhead.
  explicit Transport(int n_nodes, FaultPlan faults = {});
  ~Transport();

  int nodes() const noexcept { return n_nodes_; }

  /// Routes `msg` to the destination's service or reply box and records the
  /// traffic against the *source* node.  Under an enabled fault plan the
  /// delivery may be delayed/reordered across flows by the injector.
  void send(Message msg);

  const FaultPlan& fault_plan() const noexcept { return fault_plan_; }

  /// Everything the fault layer absorbed so far (all zeros when disabled).
  FaultCounters fault_counters() const;

  /// Blocks until every in-flight (delayed) message has been delivered.
  /// SPMD runners call this after joining their program threads so no
  /// delayed fire-and-forget message can leak into a later run.
  void quiesce();

  Mailbox& service_box(int node) { return boxes_[node]->service; }
  Mailbox& reply_box(int node) { return boxes_[node]->reply; }

  /// Closes every mailbox (service loops see nullopt and exit).
  void shutdown();

  /// Closes every *reply* box only: application threads blocked in a
  /// request see the close and throw, while the service threads (which
  /// drain the service boxes) keep running.  This is how a failed SPMD
  /// program unwinds its peers without poisoning a persistent cluster.
  void abort_requests();

  /// Undoes abort_requests(): discards any reply that raced the abort
  /// (request ids are never reused, so a survivor could only ever be
  /// dropped as stale) and re-arms the reply boxes for the next program.
  void reset_reply_boxes();

  /// Per-source-node traffic snapshot.
  TrafficCounters counters(int node) const;
  TrafficCounters total_counters() const;
  /// Snapshot of every node's counters at once (index = source node) — the
  /// hook the observability layer (src/obs) serializes into run reports.
  std::vector<TrafficCounters> per_node_counters() const;

 private:
  struct NodeBoxes {
    Mailbox service;
    Mailbox reply;
    std::array<std::atomic<std::uint64_t>, kNumMsgTypes> sent_messages{};
    std::array<std::atomic<std::uint64_t>, kNumMsgTypes> sent_bytes{};
  };
  void deliver(Message msg);  ///< the actual mailbox push

  int n_nodes_;
  FaultPlan fault_plan_;
  std::vector<std::unique_ptr<NodeBoxes>> boxes_;
  std::unique_ptr<FaultInjector> injector_;  ///< null when the plan is off
};

}  // namespace gdsm::net
