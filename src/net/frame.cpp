#include "net/frame.h"

#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <new>
#include <stdexcept>
#include <string>

#include <sys/socket.h>

namespace gdsm::net {

namespace {

template <typename T>
void put(std::vector<std::byte>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T take(const std::byte* body, std::size_t len, std::size_t& off) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (off + sizeof(T) > len) {
    throw std::runtime_error("net::decode_message: truncated body");
  }
  T v;
  std::memcpy(&v, body + off, sizeof(T));
  off += sizeof(T);
  return v;
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string(what) + ": " +
                           std::strerror(errno));
}

}  // namespace

void append_frame(std::vector<std::byte>& out, FrameKind kind,
                  const std::byte* body, std::size_t body_len) {
  if (body_len + 1 > kMaxFrameBody) {
    throw std::runtime_error("net::append_frame: body exceeds kMaxFrameBody");
  }
  put<std::uint32_t>(out, static_cast<std::uint32_t>(body_len + 1));
  put<std::uint8_t>(out, static_cast<std::uint8_t>(kind));
  if (body_len > 0) out.insert(out.end(), body, body + body_len);
}

std::vector<std::byte> encode_message(const Message& msg) {
  std::vector<std::byte> out;
  out.reserve(38 + msg.payload.size());
  put<std::int32_t>(out, msg.src);
  put<std::int32_t>(out, msg.dst);
  put<std::uint8_t>(out, static_cast<std::uint8_t>(msg.type));
  put<std::uint8_t>(out, msg.to_reply_box ? 1 : 0);
  put<std::uint64_t>(out, msg.a);
  put<std::uint64_t>(out, msg.b);
  put<std::uint64_t>(out, msg.c);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(msg.payload.size()));
  out.insert(out.end(), msg.payload.begin(), msg.payload.end());
  return out;
}

Message decode_message(const std::byte* body, std::size_t len) {
  std::size_t off = 0;
  Message msg;
  msg.src = take<std::int32_t>(body, len, off);
  msg.dst = take<std::int32_t>(body, len, off);
  const auto type = take<std::uint8_t>(body, len, off);
  if (type >= kNumMsgTypes) {
    throw std::runtime_error("net::decode_message: unknown message type");
  }
  msg.type = static_cast<MsgType>(type);
  msg.to_reply_box = take<std::uint8_t>(body, len, off) != 0;
  msg.a = take<std::uint64_t>(body, len, off);
  msg.b = take<std::uint64_t>(body, len, off);
  msg.c = take<std::uint64_t>(body, len, off);
  const auto payload_len = take<std::uint32_t>(body, len, off);
  if (off + payload_len != len) {
    throw std::runtime_error("net::decode_message: payload length mismatch");
  }
  msg.payload.assign(body + off, body + off + payload_len);
  return msg;
}

Message decode_message(const std::vector<std::byte>& body) {
  return decode_message(body.data(), body.size());
}

void append_message_frame(std::vector<std::byte>& out, const Message& msg) {
  const std::vector<std::byte> body = encode_message(msg);
  append_frame(out, FrameKind::kMessage, body.data(), body.size());
}

namespace {

/// Reads exactly n bytes; returns false on EOF before the first byte when
/// `eof_ok`, throws on mid-buffer EOF or error.
bool read_exact(int fd, std::byte* buf, std::size_t n, bool eof_ok) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, buf + got, n - got);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("net::read_frame");
    }
    if (r == 0) {
      if (got == 0 && eof_ok) return false;
      throw std::runtime_error("net::read_frame: EOF mid-frame");
    }
    got += static_cast<std::size_t>(r);
  }
  return true;
}

}  // namespace

std::optional<Frame> read_frame(int fd) {
  std::uint32_t body_len = 0;
  if (!read_exact(fd, reinterpret_cast<std::byte*>(&body_len),
                  sizeof(body_len), /*eof_ok=*/true)) {
    return std::nullopt;  // clean EOF at a frame boundary
  }
  if (body_len == 0 || body_len > kMaxFrameBody) {
    throw std::runtime_error("net::read_frame: bad frame length");
  }
  std::uint8_t kind = 0;
  read_exact(fd, reinterpret_cast<std::byte*>(&kind), 1, /*eof_ok=*/false);
  if (kind > static_cast<std::uint8_t>(FrameKind::kDrained)) {
    throw std::runtime_error("net::read_frame: unknown frame kind");
  }
  Frame f;
  f.kind = static_cast<FrameKind>(kind);
  f.body.resize(body_len - 1);
  if (!f.body.empty()) {
    read_exact(fd, f.body.data(), f.body.size(), /*eof_ok=*/false);
  }
  return f;
}

void write_frame(int fd, FrameKind kind, const std::byte* body,
                 std::size_t body_len) {
  std::vector<std::byte> buf;
  buf.reserve(5 + body_len);
  append_frame(buf, kind, body, body_len);
  std::size_t sent = 0;
  while (sent < buf.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE instead of killing the process
    // with SIGPIPE; the caller maps the error to a node failure.
    const ssize_t r = ::send(fd, buf.data() + sent, buf.size() - sent,
                             MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("net::write_frame");
    }
    sent += static_cast<std::size_t>(r);
  }
}

void write_message_frame(int fd, const Message& msg) {
  const std::vector<std::byte> body = encode_message(msg);
  write_frame(fd, FrameKind::kMessage, body.data(), body.size());
}

// ---------------------------------------------------------------------------
// Typed error propagation (kDone failure bodies).

const char* error_kind_name(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kRuntime: return "runtime";
    case ErrorKind::kLogic: return "logic";
    case ErrorKind::kInvalidArgument: return "invalid_argument";
    case ErrorKind::kDomain: return "domain";
    case ErrorKind::kLength: return "length";
    case ErrorKind::kOutOfRange: return "out_of_range";
    case ErrorKind::kRange: return "range";
    case ErrorKind::kOverflow: return "overflow";
    case ErrorKind::kUnderflow: return "underflow";
    case ErrorKind::kBadAlloc: return "bad_alloc";
    case ErrorKind::kSystem: return "system";
    case ErrorKind::kUnknown: return "unknown";
  }
  return "unknown";
}

ErrorKind classify_error(const std::exception& e) {
  // Most-derived types first: every listed class below derives from
  // logic_error or runtime_error, which must therefore come last.
  if (dynamic_cast<const std::invalid_argument*>(&e) != nullptr) {
    return ErrorKind::kInvalidArgument;
  }
  if (dynamic_cast<const std::domain_error*>(&e) != nullptr) {
    return ErrorKind::kDomain;
  }
  if (dynamic_cast<const std::length_error*>(&e) != nullptr) {
    return ErrorKind::kLength;
  }
  if (dynamic_cast<const std::out_of_range*>(&e) != nullptr) {
    return ErrorKind::kOutOfRange;
  }
  if (dynamic_cast<const std::range_error*>(&e) != nullptr) {
    return ErrorKind::kRange;
  }
  if (dynamic_cast<const std::overflow_error*>(&e) != nullptr) {
    return ErrorKind::kOverflow;
  }
  if (dynamic_cast<const std::underflow_error*>(&e) != nullptr) {
    return ErrorKind::kUnderflow;
  }
  if (dynamic_cast<const std::bad_alloc*>(&e) != nullptr) {
    return ErrorKind::kBadAlloc;
  }
  if (dynamic_cast<const std::logic_error*>(&e) != nullptr) {
    return ErrorKind::kLogic;
  }
  return ErrorKind::kRuntime;
}

std::exception_ptr make_error(ErrorKind kind, const std::string& what) {
  switch (kind) {
    case ErrorKind::kLogic:
      return std::make_exception_ptr(std::logic_error(what));
    case ErrorKind::kInvalidArgument:
      return std::make_exception_ptr(std::invalid_argument(what));
    case ErrorKind::kDomain:
      return std::make_exception_ptr(std::domain_error(what));
    case ErrorKind::kLength:
      return std::make_exception_ptr(std::length_error(what));
    case ErrorKind::kOutOfRange:
      return std::make_exception_ptr(std::out_of_range(what));
    case ErrorKind::kRange:
      return std::make_exception_ptr(std::range_error(what));
    case ErrorKind::kOverflow:
      return std::make_exception_ptr(std::overflow_error(what));
    case ErrorKind::kUnderflow:
      return std::make_exception_ptr(std::underflow_error(what));
    case ErrorKind::kRuntime:
    case ErrorKind::kBadAlloc:  // bad_alloc::what is fixed; keep the message
    case ErrorKind::kSystem:
    case ErrorKind::kUnknown:
      break;
  }
  return std::make_exception_ptr(std::runtime_error(what));
}

std::vector<std::byte> encode_error_body(ErrorKind kind,
                                         std::string_view what) {
  std::vector<std::byte> out;
  out.reserve(1 + what.size());
  out.push_back(static_cast<std::byte>(kind));
  const auto* p = reinterpret_cast<const std::byte*>(what.data());
  out.insert(out.end(), p, p + what.size());
  return out;
}

std::pair<ErrorKind, std::string> decode_error_body(const std::byte* body,
                                                    std::size_t len) {
  if (len == 0) return {ErrorKind::kRuntime, std::string()};
  const auto tag = static_cast<std::uint8_t>(body[0]);
  if (tag > static_cast<std::uint8_t>(ErrorKind::kUnknown)) {
    // Legacy kind-less body (or garbage tag): the whole body is the message.
    return {ErrorKind::kRuntime,
            std::string(reinterpret_cast<const char*>(body), len)};
  }
  return {static_cast<ErrorKind>(tag),
          std::string(reinterpret_cast<const char*>(body) + 1, len - 1)};
}

}  // namespace gdsm::net
