// Protocol messages exchanged between DSM nodes.
//
// In the real JIAJIA system these are UDP datagrams serviced by a SIGIO
// handler; here they are typed records moved between in-process mailboxes.
// The modeled wire size (header + payload) feeds the traffic statistics that
// the simulator's cost model consumes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace gdsm::net {

enum class MsgType : std::uint8_t {
  kGetPage,       ///< read fault: fetch a page from its home
  kPageData,      ///< home -> faulting node: page contents
  kDiff,          ///< release: run-length diff of a dirty page to its home
  kDiffAck,       ///< home -> releaser: diff applied
  kAcquire,       ///< lock acquire request to the lock manager
  kAcquireGrant,  ///< manager -> acquirer: lock granted + write notices
  kRelease,       ///< lock release notification + write notices
  kBarrier,       ///< barrier arrival + write notices (Fig. 6 "BARR")
  kBarrierGrant,  ///< barrier exit + union of write notices ("BARRGRANT")
  kSetCv,         ///< condition signal + write notices
  kWaitCv,        ///< condition wait request
  kCvGrant,       ///< manager -> waiter: condition granted + write notices
  kAllocate,      ///< collective allocation forwarded to node 0
  kAllocateReply, ///< node 0 -> requester: base address
  kUserData,      ///< message-passing layer payload (src/mp)
  kStop,          ///< shuts a service loop down (not a protocol message)
  // -- batched data plane (appended so earlier numeric values stay stable) --
  kDiffBatch,     ///< release: coalesced diffs of several pages to one home
  kDiffBatchAck,  ///< home -> releaser: every diff of the batch applied
  kGetPages,      ///< read fault: bulk-fetch several pages from one home
  kPagesData,     ///< home -> faulting node: the requested pages' contents
};

inline constexpr int kNumMsgTypes = 20;

const char* msg_type_name(MsgType t) noexcept;

/// One protocol message.  `a`, `b`, `c` carry small scalar arguments whose
/// meaning depends on the type (page id, lock id, sequence number, ...).
struct Message {
  int src = -1;
  int dst = -1;
  MsgType type = MsgType::kStop;
  bool to_reply_box = false;  ///< replies go to the waiting application thread
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::vector<std::byte> payload;

  /// Modeled on a UDP datagram: 28 bytes of IP+UDP header plus a small
  /// fixed protocol header, as JIAJIA's messages carry.
  std::size_t wire_size() const noexcept { return 40 + payload.size(); }
};

/// Helpers to move plain structs through payloads.
template <typename T>
void append_pod(std::vector<std::byte>& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
T read_pod(const std::vector<std::byte>& in, std::size_t offset) {
  static_assert(std::is_trivially_copyable_v<T>);
  T v;
  std::memcpy(&v, in.data() + offset, sizeof(T));
  return v;
}

}  // namespace gdsm::net
