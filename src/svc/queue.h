// Bounded admission queue of the alignment service.
//
// Admission is *non-blocking with backpressure*: when the queue is at
// capacity, try_push rejects with a reason instead of stalling the client —
// the service turns the reason into a failed ticket and counts the reject.
// Workers block in pop(); take_matching() is the scheduler's batching hook,
// pulling every queued query a predicate accepts (same resident subject,
// compatible mode) so one dispatch can ride a single warm subject.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <vector>

#include "svc/query.h"

namespace gdsm::svc {

class QueryQueue {
 public:
  explicit QueryQueue(std::size_t capacity)
      : capacity_(capacity ? capacity : 1) {}

  enum class Reject {
    kNone = 0,
    kFull,    ///< backpressure: capacity reached
    kClosed,  ///< service shutting down
  };
  static const char* reject_reason(Reject r) noexcept;

  /// Admits `q` or rejects it; never blocks.
  Reject try_push(PendingQuery q);

  /// Blocks for the next query in admission order; nullopt once the queue
  /// is closed and drained.
  std::optional<PendingQuery> pop();

  /// Removes (in admission order) up to `max` queued queries the predicate
  /// accepts.  Never blocks; used to batch compatible queries behind the
  /// one a worker just popped.
  std::vector<PendingQuery> take_matching(
      const std::function<bool(const PendingQuery&)>& pred, std::size_t max);

  /// Queries currently waiting.
  std::size_t depth() const;
  std::size_t capacity() const noexcept { return capacity_; }

  /// Stops admission; blocked pop() calls drain the remainder then see
  /// nullopt.
  void close();

 private:
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<PendingQuery> queue_;
  bool closed_ = false;
};

}  // namespace gdsm::svc
