// The multi-query alignment service: admission, batching, and a
// strategy-aware scheduler over one persistent DSM cluster.
//
// The paper runs one alignment per cluster boot.  This subsystem turns the
// reproduction into a long-lived service: subject genomes are loaded into
// DSM global memory once (host_write + retain_range keeps their pages warm
// across jobs), queries are admitted through a bounded queue with
// backpressure and per-query deadlines, and a worker pool dispatches them —
// batching compatible queries against the same resident subject and picking
// the cheapest strategy per query with the calibrated cost model.  A failed
// query (node-program exception) is absorbed by the cluster's recovery path
// and does not poison the pool for its neighbours.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "db/db_align.h"
#include "db/subject_db.h"
#include "dsm/cluster.h"
#include "sim/cost_model.h"
#include "svc/query.h"
#include "svc/queue.h"
#include "svc/scheduler.h"
#include "svc/stats.h"

namespace gdsm::svc {

struct ServiceConfig {
  int nprocs = 4;                  ///< cluster nodes (and strategy procs)
  std::size_t queue_capacity = 64; ///< admission bound (backpressure)
  int workers = 2;                 ///< dispatcher threads
  std::size_t max_batch = 8;       ///< queries per same-subject batch
  /// Blocked decomposition for service dispatches (bands = mult_h * P,
  /// blocks = mult_w * P); also prices the scheduler's estimates.
  std::size_t mult_w = 2;
  std::size_t mult_h = 2;
  dsm::DsmConfig dsm{};     ///< persistent cluster config (n_cvs is raised
                            ///< automatically to what the strategies need)
  sim::CostModel cost{};    ///< scheduler cost model
  /// Re-derive every answer with the serial reference and fail the query on
  /// any divergence (the service-path correctness oracle; used by loadgen,
  /// CI and the fuzzer's --service mode).
  bool verify = false;
};

class AlignService {
 public:
  explicit AlignService(ServiceConfig cfg);
  ~AlignService();
  AlignService(const AlignService&) = delete;
  AlignService& operator=(const AlignService&) = delete;

  /// Installs a subject genome: allocates striped global memory, seeds the
  /// home pages, and marks the range resident so it survives end-of-job
  /// cache sweeps.  The subject's name() is the key queries use; loading a
  /// name twice throws.
  void load_subject(const Sequence& subject);
  bool has_subject(const std::string& name) const;

  /// Installs a multi-sequence subject database under `name`: fragments the
  /// sequences, builds the q-gram filtration index, and shards the
  /// fragments across the cluster nodes (per-node arenas homed at their
  /// owners, retained across end-of-job cache sweeps).  Queries select it
  /// with QuerySpec::database.  Loading a name twice throws.
  void load_db(const std::string& name, std::vector<Sequence> sequences,
               db::DbConfig db_cfg = {});
  bool has_db(const std::string& name) const;

  struct Admission {
    TicketPtr ticket;          ///< always non-null; resolved on reject too
    std::string reject;        ///< non-empty when admission refused
    bool admitted() const { return reject.empty(); }
  };
  /// Non-blocking admission; rejects (with reason) when the queue is full
  /// or the service is shutting down.
  Admission submit(QuerySpec spec);

  /// Blocks until every admitted query has been resolved.
  void drain();

  /// Stops admission, drains the queue, joins the workers and stops the
  /// cluster.  Idempotent; also run by the destructor.
  void shutdown();

  ServiceStats stats() const;
  const Scheduler& scheduler() const noexcept { return scheduler_; }
  int nprocs() const noexcept { return cfg_.nprocs; }
  std::size_t queue_capacity() const noexcept { return queue_.capacity(); }

 private:
  struct Subject {
    Sequence seq;
    dsm::GlobalAddr addr = 0;
    bool warm = false;  ///< pages cached on the nodes by an earlier query
  };

  struct Database {
    db::SubjectDb db;
    db::DbShards shards;
    bool warm = false;  ///< shards cached on their owners by an earlier scan
  };

  static ServiceConfig normalize(ServiceConfig cfg);
  dsm::DsmConfig cluster_config() const;
  static bool batchable(const QuerySpec& spec);
  void worker_loop();
  void execute_one(PendingQuery& q, std::size_t batch_size);

  ServiceConfig cfg_;
  dsm::Cluster cluster_;
  Scheduler scheduler_;
  QueryQueue queue_;

  mutable std::mutex mu_;  ///< subjects_, stats_, pending_
  std::condition_variable idle_cv_;
  std::map<std::string, Subject> subjects_;
  std::map<std::string, Database> databases_;
  ServiceStats stats_;
  std::uint64_t next_id_ = 0;
  std::uint64_t pending_ = 0;  ///< admitted, not yet resolved

  std::vector<std::thread> workers_;
  bool stopped_ = false;
};

}  // namespace gdsm::svc
