// Strategy-aware scheduler: picks how each admitted query runs.
//
// The decision is a cost-model estimate over the three heuristic
// strategies, using the calibrated 1998-platform constants of
// sim/cost_model.h:
//
//  * wavefront pays a per-row border handshake (2 control messages plus
//    protocol software per matrix row) but ships only a column slice of
//    the subject to each node — it wins short probes;
//  * blocked amortizes communication into per-block boundary rows and,
//    when the subject is already *warm* in the node caches, pays no subject
//    traffic at all — it wins resident subjects;
//  * blocked_mp has no DSM protocol overhead but must scatter the whole
//    subject to every rank per dispatch — it wins cold one-shot queries on
//    large subjects.
//
// Exact-mode queries and explicit strategy requests bypass the model.
#pragma once

#include <cstddef>

#include "sim/cost_model.h"
#include "svc/query.h"

namespace gdsm::svc {

struct ScheduleInput {
  std::size_t query_len = 0;    ///< m (rows)
  std::size_t subject_len = 0;  ///< n (columns)
  bool subject_warm = false;    ///< resident pages live in the node caches
};

struct ScheduleDecision {
  StrategyKind strategy = StrategyKind::kBlocked;
  double est_s = 0;  ///< estimate of the chosen strategy
  double est_wavefront_s = 0;
  double est_blocked_s = 0;
  double est_blocked_mp_s = 0;
};

class Scheduler {
 public:
  /// `mult_w`/`mult_h` mirror the blocked decomposition the service uses,
  /// so the estimate prices the same grid the dispatch will run.
  Scheduler(sim::CostModel model, int nprocs, std::size_t mult_w,
            std::size_t mult_h);

  /// Argmin over the per-strategy estimates (kAuto path).
  ScheduleDecision choose(const ScheduleInput& in) const;

  // Per-strategy estimates, exposed so tests can pin the ordering.
  double wavefront_estimate(std::size_t m, std::size_t n, bool warm) const;
  double blocked_estimate(std::size_t m, std::size_t n, bool warm) const;
  double blocked_mp_estimate(std::size_t m, std::size_t n) const;

  const sim::CostModel& model() const noexcept { return model_; }

 private:
  double compute_s(std::size_t m, std::size_t n) const;
  double dsm_fetch_s(std::size_t bytes) const;
  void grid_shape(std::size_t m, std::size_t n, std::size_t& bands,
                  std::size_t& blocks) const;

  sim::CostModel model_;
  int nprocs_;
  std::size_t mult_w_;
  std::size_t mult_h_;
};

}  // namespace gdsm::svc
