// Strategy-aware scheduler: picks how each admitted query runs.
//
// The decision is a cost-model estimate over the three heuristic
// strategies, using the calibrated 1998-platform constants of
// sim/cost_model.h:
//
//  * wavefront pays a per-row border handshake (2 control messages plus
//    protocol software per matrix row) but ships only a column slice of
//    the subject to each node — it wins short probes;
//  * blocked amortizes communication into per-block boundary rows and,
//    when the subject is already *warm* in the node caches, pays no subject
//    traffic at all — it wins resident subjects;
//  * blocked_mp has no DSM protocol overhead but must scatter the whole
//    subject to every rank per dispatch — it wins cold one-shot queries on
//    large subjects.
//
// Exact-mode queries and explicit strategy requests bypass the model.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "sim/cost_model.h"
#include "svc/query.h"

namespace gdsm::svc {

struct ScheduleInput {
  std::size_t query_len = 0;    ///< m (rows)
  std::size_t subject_len = 0;  ///< n (columns)
  bool subject_warm = false;    ///< resident pages live in the node caches
  bool affine = false;          ///< query scheme uses affine (Gotoh) gaps
};

struct ScheduleDecision {
  StrategyKind strategy = StrategyKind::kBlocked;
  double est_s = 0;  ///< estimate of the chosen strategy
  double est_wavefront_s = 0;
  double est_blocked_s = 0;
  double est_blocked_mp_s = 0;
  std::string kernel_backend;  ///< SIMD backend the estimates priced in
};

class Scheduler {
 public:
  /// `mult_w`/`mult_h` mirror the blocked decomposition the service uses,
  /// so the estimate prices the same grid the dispatch will run.
  Scheduler(sim::CostModel model, int nprocs, std::size_t mult_w,
            std::size_t mult_h);

  /// Argmin over the per-strategy estimates (kAuto path).
  ScheduleDecision choose(const ScheduleInput& in) const;

  // Per-strategy estimates, exposed so tests can pin the ordering.  The
  // `affine` flag scales the per-cell compute by the cost model's gap-model
  // factors (heuristic factor for the DSM strategies, per-backend kernel
  // factor for the exact pass); communication terms are model-independent
  // except the exact boundary rows, which double under affine ([H | E]).
  double wavefront_estimate(std::size_t m, std::size_t n, bool warm,
                            bool affine = false) const;
  double blocked_estimate(std::size_t m, std::size_t n, bool warm,
                          bool affine = false) const;
  double blocked_mp_estimate(std::size_t m, std::size_t n,
                             bool affine = false) const;

  /// Score-only exact-mode pass (the §5 counting sweep) priced with the
  /// per-backend plain cell cost — the estimate that tracks the dispatched
  /// kernels rather than the 1998 calibration.
  double exact_estimate(std::size_t m, std::size_t n,
                        bool affine = false) const;

  /// Database scan: DP over the filtration survivors only (`aligned_bases`
  /// of resident fragments, balanced across the shards) plus the per-node
  /// query fetch.  The filter itself is host-side and ~free next to DP.
  double db_estimate(std::size_t m, std::size_t aligned_bases,
                     bool affine = false) const;

  /// Same scan with the seed-and-extend cascade enabled: the certified
  /// fraction of survivors resolves in a host-side banded DP (scalar, no
  /// shard parallelism) and only the remainder pays the sharded kernels;
  /// `seeds` is the expected gathered seed-occurrence count, pricing the
  /// chaining and X-drop stages.
  double db_cascade_estimate(std::size_t m, std::size_t aligned_bases,
                             std::size_t seeds, bool affine = false) const;

  /// SIMD backend the estimates assume.  Defaults to the dispatch table's
  /// active backend; tests pin it to compare machines.
  const std::string& kernel_backend() const noexcept { return kernel_backend_; }
  void set_kernel_backend(std::string_view backend) {
    kernel_backend_.assign(backend);
  }

  const sim::CostModel& model() const noexcept { return model_; }

 private:
  double compute_s(std::size_t m, std::size_t n, bool affine) const;
  double dsm_fetch_s(std::size_t bytes) const;
  void grid_shape(std::size_t m, std::size_t n, std::size_t& bands,
                  std::size_t& blocks) const;

  sim::CostModel model_;
  int nprocs_;
  std::size_t mult_w_;
  std::size_t mult_h_;
  std::string kernel_backend_;
};

}  // namespace gdsm::svc
