#include "svc/service.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/blocked.h"
#include "core/blocked_mp.h"
#include "core/exact_parallel.h"
#include "core/wavefront.h"
#include "db/meter.h"
#include "simd/striped.h"
#include "sw/affine.h"

namespace gdsm::svc {
namespace {

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ServiceConfig AlignService::normalize(ServiceConfig cfg) {
  if (cfg.nprocs < 1) cfg.nprocs = 1;
  if (cfg.workers < 1) cfg.workers = 1;
  if (cfg.queue_capacity == 0) cfg.queue_capacity = 1;
  if (cfg.max_batch == 0) cfg.max_batch = 1;
  if (cfg.mult_w == 0) cfg.mult_w = 1;
  if (cfg.mult_h == 0) cfg.mult_h = 1;
  return cfg;
}

dsm::DsmConfig AlignService::cluster_config() const {
  dsm::DsmConfig d = cfg_.dsm;
  // Wavefront needs 2P+2 cvs, blocked needs bands+1 = mult_h*P + 1; size
  // the shared pool once for whichever strategy any query may pick.
  const int p = cfg_.nprocs;
  const int need = std::max(2 * p + 2,
                            static_cast<int>(cfg_.mult_h) * p + 1);
  d.n_cvs = std::max(d.n_cvs, need);
  return d;
}

AlignService::AlignService(ServiceConfig cfg)
    : cfg_(normalize(std::move(cfg))),
      cluster_(cfg_.nprocs, cluster_config()),
      scheduler_(cfg_.cost, cfg_.nprocs, cfg_.mult_w, cfg_.mult_h),
      queue_(cfg_.queue_capacity) {
  stats_.kernel_backend = scheduler_.kernel_backend();
  workers_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int i = 0; i < cfg_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

AlignService::~AlignService() { shutdown(); }

void AlignService::load_subject(const Sequence& subject) {
  if (subject.name().empty()) {
    throw std::invalid_argument("AlignService: subject sequence needs a name");
  }
  if (subject.empty()) {
    throw std::invalid_argument("AlignService: subject sequence is empty");
  }
  {
    const std::scoped_lock lk(mu_);
    if (subjects_.count(subject.name()) != 0) {
      throw std::invalid_argument("AlignService: subject already loaded: " +
                                  subject.name());
    }
  }
  Subject s;
  s.seq = subject;
  const std::size_t bytes = subject.size() * sizeof(Base);
  s.addr = cluster_.alloc_striped(bytes);
  cluster_.host_write(s.addr, subject.data(), bytes);
  cluster_.retain_range(s.addr, bytes);
  const std::scoped_lock lk(mu_);
  if (!subjects_.emplace(subject.name(), std::move(s)).second) {
    throw std::invalid_argument("AlignService: subject already loaded: " +
                                subject.name());
  }
}

bool AlignService::has_subject(const std::string& name) const {
  const std::scoped_lock lk(mu_);
  return subjects_.count(name) != 0;
}

void AlignService::load_db(const std::string& name,
                           std::vector<Sequence> sequences,
                           db::DbConfig db_cfg) {
  if (name.empty()) {
    throw std::invalid_argument("AlignService: database needs a name");
  }
  if (sequences.empty()) {
    throw std::invalid_argument("AlignService: database needs sequences");
  }
  {
    const std::scoped_lock lk(mu_);
    if (databases_.count(name) != 0) {
      throw std::invalid_argument("AlignService: database already loaded: " +
                                  name);
    }
  }
  Database d;
  if (!db_cfg.index_path.empty()) {
    // Warm path: adopt the persisted q-gram index (checksummed against the
    // sequences) instead of rebuilding it.  Any mismatch — missing file,
    // version/geometry drift, content change, corruption — falls back to a
    // cold build that refreshes the file for the next load.
    try {
      d.db = db::SubjectDb::open_index(sequences, db_cfg.index_path, db_cfg);
      db::db_meter_record_index_open();
    } catch (const std::exception&) {
      d.db = db::SubjectDb(std::move(sequences), db_cfg);
      try {
        d.db.save_index(db_cfg.index_path);
      } catch (const std::exception&) {
        // Serving works without persistence; the next load rebuilds again.
      }
    }
  } else {
    d.db = db::SubjectDb(std::move(sequences), db_cfg);
  }
  if (d.db.fragments().empty()) {
    throw std::invalid_argument("AlignService: database has no fragments: " +
                                name);
  }
  // Like load_subject: host_write + retain_range runs between jobs, so
  // databases load before (or between) query traffic.
  d.shards = db::DbShards(cluster_, d.db);
  const std::scoped_lock lk(mu_);
  if (!databases_.emplace(name, std::move(d)).second) {
    throw std::invalid_argument("AlignService: database already loaded: " +
                                name);
  }
}

bool AlignService::has_db(const std::string& name) const {
  const std::scoped_lock lk(mu_);
  return databases_.count(name) != 0;
}

AlignService::Admission AlignService::submit(QuerySpec spec) {
  Admission out;
  out.ticket = std::make_shared<QueryTicket>();
  PendingQuery q;
  q.spec = std::move(spec);
  q.admitted_at = std::chrono::steady_clock::now();
  q.ticket = out.ticket;
  {
    const std::scoped_lock lk(mu_);
    q.id = ++next_id_;
    ++pending_;  // before the push: a worker may resolve it immediately
  }
  const QueryQueue::Reject r = queue_.try_push(std::move(q));
  const std::scoped_lock lk(mu_);
  if (r == QueryQueue::Reject::kNone) {
    ++stats_.admitted;
    const auto depth = static_cast<std::uint64_t>(queue_.depth());
    ++stats_.depth_samples;
    stats_.depth_sum += depth;
    stats_.depth_max = std::max(stats_.depth_max, depth);
  } else {
    if (--pending_ == 0) idle_cv_.notify_all();
    out.reject = QueryQueue::reject_reason(r);
    if (r == QueryQueue::Reject::kFull) {
      ++stats_.rejected_full;
    } else {
      ++stats_.rejected_closed;
    }
    QueryOutcome o;
    o.error = out.reject;
    out.ticket->fulfill(std::move(o));
  }
  return out;
}

bool AlignService::batchable(const QuerySpec& spec) {
  // Exact queries own their dispatch (different result type, message
  // passing); injected failures must not drag neighbours down with them.
  return spec.strategy != StrategyKind::kExact && spec.inject_failure_node < 0;
}

void AlignService::worker_loop() {
  for (;;) {
    std::optional<PendingQuery> head = queue_.pop();
    if (!head) return;
    std::vector<PendingQuery> batch;
    batch.push_back(std::move(*head));
    if (batchable(batch.front().spec) && cfg_.max_batch > 1) {
      // Batch key: the resident data the dispatch touches — the database
      // for db scans, the subject otherwise.
      const std::string& subject = batch.front().spec.subject;
      const std::string& database = batch.front().spec.database;
      std::vector<PendingQuery> more = queue_.take_matching(
          [&](const PendingQuery& p) {
            return batchable(p.spec) && p.spec.database == database &&
                   (!database.empty() || p.spec.subject == subject);
          },
          cfg_.max_batch - 1);
      for (auto& p : more) batch.push_back(std::move(p));
    }
    {
      const std::scoped_lock lk(mu_);
      ++stats_.batches;
      if (batch.size() > 1) {
        stats_.batched_queries += batch.size();
        stats_.max_batch =
            std::max<std::uint64_t>(stats_.max_batch, batch.size());
      }
    }
    for (auto& q : batch) execute_one(q, batch.size());
  }
}

void AlignService::execute_one(PendingQuery& q, std::size_t batch_size) {
  const auto dispatched = std::chrono::steady_clock::now();
  QueryOutcome out;
  out.result.id = q.id;
  out.result.batch_size = batch_size;
  out.result.wait_s = seconds_between(q.admitted_at, dispatched);

  bool deadline_reject = false;
  bool cluster_failed = false;
  const Subject* subj = nullptr;
  const Database* dbp = nullptr;
  bool warm = false;
  bool resident_used = false;
  StrategyKind chosen = q.spec.strategy;

  if (q.spec.deadline_s > 0 && out.result.wait_s > q.spec.deadline_s) {
    deadline_reject = true;
    out.error = "deadline expired before dispatch";
  } else if (!q.spec.database.empty()) {
    const std::scoped_lock lk(mu_);
    const auto it = databases_.find(q.spec.database);
    if (it == databases_.end()) {
      out.error = "unknown database: " + q.spec.database;
    } else {
      dbp = &it->second;  // map entries are never erased: stable address
      warm = dbp->warm;
    }
  } else {
    const std::scoped_lock lk(mu_);
    const auto it = subjects_.find(q.spec.subject);
    if (it == subjects_.end()) {
      out.error = "unknown subject: " + q.spec.subject;
    } else {
      subj = &it->second;
      warm = subj->warm;
    }
  }

  if (dbp != nullptr) {
    chosen = StrategyKind::kDbScan;
    out.result.strategy = chosen;
    out.result.warm = warm;
    if (q.spec.strategy != StrategyKind::kAuto &&
        q.spec.strategy != StrategyKind::kDbScan) {
      out.error = "database queries use the db_scan strategy";
    } else if (q.spec.min_score < 1) {
      out.error = "database queries need min_score >= 1";
    } else {
      try {
        resident_used = true;
        // Build the striped query profile once, before the shard fan-out:
        // every filtration survivor of this query then hits the profile
        // cache instead of racing to build it (no-op for non-striped
        // backends; docs/KERNELS.md "Query-profile cache").
        simd::warm_query_profile(
            q.spec.query.data(), q.spec.query.size(),
            simd::ScoreParams{q.spec.scheme.match, q.spec.scheme.mismatch,
                              q.spec.scheme.gap, q.spec.scheme.gap_open});
        db::DbQueryResult r =
            db::db_query(cluster_, dbp->db, dbp->shards, q.spec.query,
                         q.spec.scheme, q.spec.min_score);
        out.result.db_hits = std::move(r.hits);
        out.result.db_fragments_scanned = r.fragments_scanned;
        out.result.db_fragments_rejected = r.fragments_rejected;
        out.result.db_fragments_aligned = r.fragments_aligned;
        out.result.db_fragments_resolved = r.fragments_resolved;
        out.result.cache_hits = r.cache_hits;
        out.result.read_faults = r.read_faults;
        out.ok = true;
      } catch (const std::exception& e) {
        out.ok = false;
        out.error = e.what();
        cluster_failed = true;
      }
      if (out.ok && cfg_.verify) {
        // The no-filter all-pairs serial scan is the database oracle: the
        // filtered sharded result must match it hit-for-hit.
        const std::vector<db::DbHit> ref = db::brute_force_hits(
            dbp->db, q.spec.query, q.spec.scheme, q.spec.min_score);
        if (ref != out.result.db_hits) {
          out.ok = false;
          out.error =
              "service divergence: db scan != brute-force hit set";
        }
      }
    }
  } else if (subj != nullptr) {
    if (chosen == StrategyKind::kAuto) {
      chosen = scheduler_
                   .choose({q.spec.query.size(), subj->seq.size(), warm,
                            q.spec.scheme.affine()})
                   .strategy;
    }
    out.result.strategy = chosen;
    out.result.warm = warm;
    try {
      if (q.spec.inject_failure_node >= 0) {
        const int bad = q.spec.inject_failure_node % cfg_.nprocs;
        cluster_.run([bad](dsm::Node& node) {
          if (node.id() == bad) {
            throw std::runtime_error("injected query failure");
          }
        });
        cluster_failed = true;  // run() above always throws
        out.error = "injected query failure";
      } else {
        switch (chosen) {
          case StrategyKind::kWavefront: {
            core::WavefrontConfig wc;
            wc.nprocs = cfg_.nprocs;
            wc.scheme = q.spec.scheme;
            wc.params = q.spec.params;
            wc.cluster = &cluster_;
            wc.resident_t_addr = subj->addr;
            wc.resident_t_size = subj->seq.size();
            resident_used = true;
            core::StrategyResult r =
                core::wavefront_align(q.spec.query, subj->seq, wc);
            out.result.candidates = std::move(r.candidates);
            out.result.overflow = r.overflow;
            const dsm::NodeStats tot = r.dsm_stats.total_node();
            out.result.cache_hits = tot.cache_hits;
            out.result.read_faults = tot.read_faults;
            out.ok = true;
            break;
          }
          case StrategyKind::kBlocked: {
            core::BlockedConfig bc;
            bc.nprocs = cfg_.nprocs;
            bc.mult_w = cfg_.mult_w;
            bc.mult_h = cfg_.mult_h;
            bc.scheme = q.spec.scheme;
            bc.params = q.spec.params;
            bc.cluster = &cluster_;
            bc.resident_t_addr = subj->addr;
            bc.resident_t_size = subj->seq.size();
            resident_used = true;
            core::StrategyResult r =
                core::blocked_align(q.spec.query, subj->seq, bc);
            out.result.candidates = std::move(r.candidates);
            out.result.overflow = r.overflow;
            const dsm::NodeStats tot = r.dsm_stats.total_node();
            out.result.cache_hits = tot.cache_hits;
            out.result.read_faults = tot.read_faults;
            out.ok = true;
            break;
          }
          case StrategyKind::kBlockedMp: {
            core::BlockedConfig bc;
            bc.nprocs = cfg_.nprocs;
            bc.mult_w = cfg_.mult_w;
            bc.mult_h = cfg_.mult_h;
            bc.scheme = q.spec.scheme;
            bc.params = q.spec.params;
            bc.dsm = cfg_.dsm;  // mp uses only the fault plan
            core::MpStrategyResult r =
                core::blocked_align_mp(q.spec.query, subj->seq, bc);
            out.result.candidates = std::move(r.candidates);
            out.ok = true;
            break;
          }
          case StrategyKind::kExact: {
            core::ExactParallelConfig ec;
            ec.nprocs = cfg_.nprocs;
            ec.scheme = q.spec.scheme;
            ec.mult_w = cfg_.mult_w;
            ec.mult_h = cfg_.mult_h;
            ec.faults = cfg_.dsm.faults;
            core::ExactParallelResult r =
                core::exact_align_parallel(q.spec.query, subj->seq, ec);
            out.result.best = r.best;
            out.result.rebuilt = std::move(r.rebuilt);
            out.ok = true;
            break;
          }
          case StrategyKind::kAuto:
            out.error = "internal: auto strategy not resolved";
            break;
        }
      }
    } catch (const std::exception& e) {
      out.ok = false;
      out.error = e.what();
      if (resident_used || q.spec.inject_failure_node >= 0) {
        cluster_failed = true;
      }
    }

    if (out.ok && cfg_.verify) {
      if (chosen == StrategyKind::kExact) {
        // Under affine gaps the reference is the serial scalar Gotoh scan —
        // deliberately independent of the SIMD kernels the parallel run
        // dispatched, so a kernel bug cannot agree with itself.
        const BestLocal ref =
            q.spec.scheme.affine()
                ? sw_best_score_affine_linear(q.spec.query, subj->seq,
                                              to_affine(q.spec.scheme))
                : sw_best_score_linear(q.spec.query, subj->seq, q.spec.scheme);
        if (ref.score != out.result.best.score ||
            ref.end_i != out.result.best.end_i ||
            ref.end_j != out.result.best.end_j) {
          out.ok = false;
          out.error =
              "service divergence: exact best != serial best-score scan";
        }
      } else {
        const std::vector<Candidate> ref = heuristic_scan(
            q.spec.query, subj->seq, q.spec.scheme, q.spec.params);
        if (ref != out.result.candidates) {
          out.ok = false;
          out.error =
              "service divergence: candidate queue != heuristic_scan";
        }
      }
    }
  }

  const auto ended = std::chrono::steady_clock::now();
  out.result.run_s = seconds_between(dispatched, ended);
  out.result.total_s = seconds_between(q.admitted_at, ended);

  {
    const std::scoped_lock lk(mu_);
    if (deadline_reject) {
      ++stats_.rejected_deadline;
    } else if (out.ok) {
      ++stats_.completed;
      ++stats_.by_strategy[static_cast<std::size_t>(chosen)];
      if (q.spec.scheme.affine()) {
        ++stats_.affine_queries;
      } else {
        ++stats_.linear_queries;
      }
      if (warm) {
        ++stats_.warm_queries;
      } else {
        ++stats_.cold_queries;
      }
      stats_.cache_hits += out.result.cache_hits;
      stats_.read_faults += out.result.read_faults;
      stats_.total_latency.record(out.result.total_s);
      stats_.run_latency.record(out.result.run_s);
      if (chosen == StrategyKind::kDbScan) {
        ++stats_.db_queries;
        stats_.db_fragments_scanned += out.result.db_fragments_scanned;
        stats_.db_fragments_rejected += out.result.db_fragments_rejected;
        stats_.db_fragments_aligned += out.result.db_fragments_aligned;
        stats_.db_fragments_resolved += out.result.db_fragments_resolved;
        stats_.db_hits += out.result.db_hits.size();
      }
      if (resident_used) {
        // This dispatch pulled the resident data (subject or database
        // shards) into the node caches; the next same-key query runs warm.
        if (!q.spec.database.empty()) {
          const auto it = databases_.find(q.spec.database);
          if (it != databases_.end()) it->second.warm = true;
        } else {
          const auto it = subjects_.find(q.spec.subject);
          if (it != subjects_.end()) it->second.warm = true;
        }
      }
    } else {
      ++stats_.failed;
      if (cluster_failed) {
        // The cluster absorbed a failed job by cold-restarting the node
        // caches: the pool keeps accepting work, but every subject and
        // database must re-warm on its next touch.
        ++stats_.recoveries;
        for (auto& [name, s] : subjects_) s.warm = false;
        for (auto& [name, d] : databases_) d.warm = false;
      }
    }
  }

  q.ticket->fulfill(std::move(out));
  const std::scoped_lock lk(mu_);
  if (--pending_ == 0) idle_cv_.notify_all();
}

void AlignService::drain() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk, [&] { return pending_ == 0; });
}

void AlignService::shutdown() {
  {
    const std::scoped_lock lk(mu_);
    if (stopped_) return;
    stopped_ = true;
  }
  queue_.close();  // pop() drains the remainder, then workers exit
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
  cluster_.stop();
}

ServiceStats AlignService::stats() const {
  const std::scoped_lock lk(mu_);
  return stats_;
}

}  // namespace gdsm::svc
