// Service-level observability: admission, batching, residency, gap-model
// and latency counters, serialized into the run-report "service" section
// (since schema v3; gap_models since v6 — docs/METRICS.md).
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "obs/json.h"
#include "svc/query.h"

namespace gdsm::svc {

/// Power-of-two latency histogram: bucket i counts samples in
/// [2^i, 2^(i+1)) microseconds; the last bucket is open-ended.
struct LatencyHistogram {
  static constexpr int kBuckets = 26;  ///< up to ~67 s, then overflow
  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  double sum_s = 0;
  double max_s = 0;

  void record(double seconds);
  /// Upper edge (exclusive) of bucket i in microseconds.
  static std::uint64_t bucket_edge_us(int i) { return 1ull << (i + 1); }
  /// Histogram quantile (0..1), resolved to the containing bucket's upper
  /// edge, in seconds.  Returns 0 when empty.
  double quantile(double q) const;
  double mean_s() const { return count ? sum_s / static_cast<double>(count) : 0; }

  obs::Json to_json() const;
};

/// Cumulative counters of one AlignService instance.  Externally
/// synchronized (the service updates them under its own mutex).
struct ServiceStats {
  // -- admission --------------------------------------------------------
  std::uint64_t admitted = 0;
  std::uint64_t rejected_full = 0;      ///< backpressure: queue at capacity
  std::uint64_t rejected_closed = 0;    ///< submitted during shutdown
  std::uint64_t rejected_deadline = 0;  ///< expired before dispatch
  // -- completion -------------------------------------------------------
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;      ///< node-program failure or divergence
  std::uint64_t recoveries = 0;  ///< failed jobs the pool absorbed
  // -- residency --------------------------------------------------------
  std::uint64_t warm_queries = 0;  ///< subject cached from an earlier query
  std::uint64_t cold_queries = 0;
  std::uint64_t cache_hits = 0;    ///< summed DSM cache hits of dispatches
  std::uint64_t read_faults = 0;   ///< summed DSM read faults of dispatches
  // -- batching ---------------------------------------------------------
  std::uint64_t batches = 0;          ///< dispatch groups
  std::uint64_t batched_queries = 0;  ///< queries that shared a batch (>1)
  std::uint64_t max_batch = 0;
  // -- queue ------------------------------------------------------------
  std::uint64_t depth_samples = 0;  ///< one sample per admission
  std::uint64_t depth_sum = 0;
  std::uint64_t depth_max = 0;
  // -- per-strategy dispatch counts (index = StrategyKind) ---------------
  std::array<std::uint64_t, kNumStrategies> by_strategy{};
  // -- kernel (v4) -------------------------------------------------------
  std::string kernel_backend;  ///< SIMD backend the scheduler priced in
  // -- gap models (v6) ---------------------------------------------------
  std::uint64_t linear_queries = 0;  ///< completed with gap_open == 0
  std::uint64_t affine_queries = 0;  ///< completed with affine (Gotoh) gaps
  // -- database serving (v7) ---------------------------------------------
  std::uint64_t db_queries = 0;             ///< completed db scans
  std::uint64_t db_fragments_scanned = 0;   ///< fragments considered
  std::uint64_t db_fragments_rejected = 0;  ///< pruned by the q-gram bound
  std::uint64_t db_fragments_aligned = 0;   ///< survivors that reached DP
  std::uint64_t db_fragments_resolved = 0;  ///< cascade-certified, DP skipped
  std::uint64_t db_hits = 0;                ///< hits across all db scans

  LatencyHistogram total_latency;  ///< admission -> completion
  LatencyHistogram run_latency;    ///< dispatch -> completion

  obs::Json to_json() const;
};

}  // namespace gdsm::svc
