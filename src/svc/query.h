// Query and result value types of the multi-query alignment service.
//
// A query names a *resident subject* (a genome the service loaded into DSM
// global memory once) and carries the probe sequence plus scoring knobs.
// The service answers with the phase-1 candidate queue (heuristic
// strategies) or the exact best alignment (Section 6 strategy), together
// with a latency breakdown and the DSM residency counters that show whether
// the subject was served warm (page-cache hits) or cold (read faults).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "db/db_align.h"
#include "sw/heuristic_scan.h"
#include "sw/linear_score.h"
#include "sw/reverse_rebuild.h"
#include "util/sequence.h"

namespace gdsm::svc {

/// How a query is executed.  kAuto lets the scheduler pick among the three
/// heuristic strategies with the calibrated cost model; the exact strategy
/// is never auto-picked (its result type differs).
enum class StrategyKind : int {
  kAuto = 0,
  kWavefront,   ///< Strategy 1: per-cell border handshake over DSM
  kBlocked,     ///< Strategy 2: bands x blocks over DSM
  kBlockedMp,   ///< Strategy 2 on message passing (no DSM, no residency)
  kExact,       ///< Section 6 exact alignment (message passing)
  kDbScan,      ///< filtered scan of a sharded multi-sequence database
};

constexpr int kNumStrategies = 6;

const char* strategy_name(StrategyKind k) noexcept;

struct QuerySpec {
  std::string subject;  ///< name of a subject loaded with load_subject()
  /// Non-empty selects database mode: the query runs as a filtered scan of
  /// the named database (load_db()) instead of a single-subject alignment.
  /// `subject` is ignored, `strategy` must be kAuto or kDbScan, and
  /// `min_score` (>= 1) sets the hit threshold the filtration bound
  /// prunes against.
  std::string database;
  int min_score = 0;    ///< database mode: hit/filtration threshold
  Sequence query;       ///< the probe (s); the subject is t
  StrategyKind strategy = StrategyKind::kAuto;
  /// Scoring, including the gap model: scheme.gap_open == 0 is the paper's
  /// linear model; gap_open != 0 selects affine (Gotoh) gaps end-to-end —
  /// the scheduler prices it, the strategies dispatch the affine kernels,
  /// and verify mode checks against the serial affine references.
  ScoreScheme scheme{};
  HeuristicParams params{};
  /// Seconds from admission after which the query is rejected instead of
  /// dispatched (0 = no deadline).
  double deadline_s = 0;
  /// Test hook: when >= 0, the dispatched cluster job throws on this node
  /// instead of aligning — exercises the failed-query recovery path.
  int inject_failure_node = -1;
};

struct QueryResult {
  std::uint64_t id = 0;
  StrategyKind strategy = StrategyKind::kAuto;  ///< what actually ran
  std::vector<Candidate> candidates;  ///< heuristic strategies
  BestLocal best{};                   ///< exact strategy
  RebuildResult rebuilt;              ///< exact strategy
  std::vector<db::DbHit> db_hits;     ///< db scan: exact hit set
  std::size_t db_fragments_scanned = 0;   ///< db scan: fragments considered
  std::size_t db_fragments_rejected = 0;  ///< db scan: pruned before DP
  std::size_t db_fragments_aligned = 0;   ///< db scan: filtration survivors
  std::size_t db_fragments_resolved = 0;  ///< db scan: cascade-certified
  bool overflow = false;
  bool warm = false;          ///< subject was resident-warm at dispatch
  std::size_t batch_size = 1; ///< queries sharing this dispatch batch
  double wait_s = 0;          ///< admission -> dispatch
  double run_s = 0;           ///< dispatch -> completion
  double total_s = 0;         ///< admission -> completion
  std::uint64_t cache_hits = 0;   ///< DSM pages served from node caches
  std::uint64_t read_faults = 0;  ///< DSM pages fetched from their homes
};

/// Terminal state of a query: either a result or an error string (admission
/// reject reason, deadline expiry, node-program failure, divergence).
struct QueryOutcome {
  bool ok = false;
  std::string error;
  QueryResult result;
};

/// One-shot completion slot shared between the submitting thread and the
/// service workers.
class QueryTicket {
 public:
  /// Blocks until the query reaches a terminal state.
  const QueryOutcome& wait() {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return ready_; });
    return out_;
  }

  bool ready() const {
    const std::scoped_lock lk(mu_);
    return ready_;
  }

  /// Resolves the ticket (service side); must be called exactly once.
  void fulfill(QueryOutcome out) {
    {
      const std::scoped_lock lk(mu_);
      out_ = std::move(out);
      ready_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool ready_ = false;
  QueryOutcome out_;
};

using TicketPtr = std::shared_ptr<QueryTicket>;

/// A query as it travels through the admission queue.
struct PendingQuery {
  std::uint64_t id = 0;
  QuerySpec spec;
  std::chrono::steady_clock::time_point admitted_at{};
  TicketPtr ticket;
};

}  // namespace gdsm::svc
