#include "svc/stats.h"

#include <algorithm>
#include <cmath>

namespace gdsm::svc {

void LatencyHistogram::record(double seconds) {
  if (seconds < 0) seconds = 0;
  const double us = seconds * 1e6;
  int b = 0;
  while (b + 1 < kBuckets &&
         us >= static_cast<double>(bucket_edge_us(b))) {
    ++b;
  }
  ++buckets[static_cast<std::size_t>(b)];
  ++count;
  sum_s += seconds;
  max_s = std::max(max_s, seconds);
}

double LatencyHistogram::quantile(double q) const {
  if (count == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (static_cast<double>(seen) >= target) {
      return static_cast<double>(bucket_edge_us(b)) * 1e-6;
    }
  }
  return max_s;
}

obs::Json LatencyHistogram::to_json() const {
  obs::Json j = obs::Json::object();
  j.set("count", count);
  j.set("sum_s", sum_s);
  j.set("mean_s", mean_s());
  j.set("max_s", max_s);
  j.set("p50_s", quantile(0.50));
  j.set("p90_s", quantile(0.90));
  j.set("p99_s", quantile(0.99));
  obs::Json rows = obs::Json::array();
  for (int b = 0; b < kBuckets; ++b) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;  // sparse: empty buckets carry no information
    obs::Json row = obs::Json::object();
    row.set("le_us", bucket_edge_us(b));
    row.set("count", n);
    rows.push(std::move(row));
  }
  j.set("buckets", std::move(rows));
  return j;
}

obs::Json ServiceStats::to_json() const {
  obs::Json j = obs::Json::object();

  obs::Json admission = obs::Json::object();
  admission.set("admitted", admitted);
  admission.set("rejected_full", rejected_full);
  admission.set("rejected_closed", rejected_closed);
  admission.set("rejected_deadline", rejected_deadline);
  j.set("admission", std::move(admission));

  obs::Json completion = obs::Json::object();
  completion.set("completed", completed);
  completion.set("failed", failed);
  completion.set("recoveries", recoveries);
  j.set("completion", std::move(completion));

  obs::Json residency = obs::Json::object();
  residency.set("warm_queries", warm_queries);
  residency.set("cold_queries", cold_queries);
  residency.set("cache_hits", cache_hits);
  residency.set("read_faults", read_faults);
  j.set("residency", std::move(residency));

  obs::Json batching = obs::Json::object();
  batching.set("batches", batches);
  batching.set("batched_queries", batched_queries);
  batching.set("max_batch", max_batch);
  j.set("batching", std::move(batching));

  obs::Json queue = obs::Json::object();
  queue.set("depth_samples", depth_samples);
  queue.set("depth_mean",
            depth_samples ? static_cast<double>(depth_sum) /
                                static_cast<double>(depth_samples)
                          : 0.0);
  queue.set("depth_max", depth_max);
  j.set("queue", std::move(queue));

  obs::Json strategies = obs::Json::object();
  for (int k = 0; k < kNumStrategies; ++k) {
    strategies.set(strategy_name(static_cast<StrategyKind>(k)),
                   by_strategy[static_cast<std::size_t>(k)]);
  }
  j.set("dispatch_by_strategy", std::move(strategies));
  j.set("kernel_backend", kernel_backend);

  obs::Json gaps = obs::Json::object();
  gaps.set("linear_queries", linear_queries);
  gaps.set("affine_queries", affine_queries);
  j.set("gap_models", std::move(gaps));

  obs::Json db = obs::Json::object();
  db.set("queries", db_queries);
  db.set("fragments_scanned", db_fragments_scanned);
  db.set("fragments_rejected", db_fragments_rejected);
  db.set("fragments_aligned", db_fragments_aligned);
  db.set("fragments_resolved", db_fragments_resolved);
  db.set("filtration_rate",
         db_fragments_scanned
             ? static_cast<double>(db_fragments_rejected) /
                   static_cast<double>(db_fragments_scanned)
             : 0.0);
  db.set("hits", db_hits);
  j.set("db", std::move(db));

  j.set("latency_total", total_latency.to_json());
  j.set("latency_run", run_latency.to_json());
  return j;
}

}  // namespace gdsm::svc
