#include "svc/queue.h"

#include <algorithm>

namespace gdsm::svc {

const char* QueryQueue::reject_reason(Reject r) noexcept {
  switch (r) {
    case Reject::kNone: return "admitted";
    case Reject::kFull: return "queue full";
    case Reject::kClosed: return "service shutting down";
  }
  return "?";
}

QueryQueue::Reject QueryQueue::try_push(PendingQuery q) {
  {
    const std::scoped_lock lk(mu_);
    if (closed_) return Reject::kClosed;
    if (queue_.size() >= capacity_) return Reject::kFull;
    queue_.push_back(std::move(q));
  }
  cv_.notify_one();
  return Reject::kNone;
}

std::optional<PendingQuery> QueryQueue::pop() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  PendingQuery q = std::move(queue_.front());
  queue_.pop_front();
  return q;
}

std::vector<PendingQuery> QueryQueue::take_matching(
    const std::function<bool(const PendingQuery&)>& pred, std::size_t max) {
  std::vector<PendingQuery> out;
  const std::scoped_lock lk(mu_);
  for (auto it = queue_.begin(); it != queue_.end() && out.size() < max;) {
    if (pred(*it)) {
      out.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::size_t QueryQueue::depth() const {
  const std::scoped_lock lk(mu_);
  return queue_.size();
}

void QueryQueue::close() {
  {
    const std::scoped_lock lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

}  // namespace gdsm::svc
