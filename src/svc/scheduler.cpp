#include "svc/scheduler.h"

#include <algorithm>
#include <cstdint>

#include "simd/dispatch.h"

namespace gdsm::svc {

const char* strategy_name(StrategyKind k) noexcept {
  switch (k) {
    case StrategyKind::kAuto: return "auto";
    case StrategyKind::kWavefront: return "wavefront";
    case StrategyKind::kBlocked: return "blocked";
    case StrategyKind::kBlockedMp: return "blocked_mp";
    case StrategyKind::kExact: return "exact";
    case StrategyKind::kDbScan: return "db_scan";
  }
  return "?";
}

Scheduler::Scheduler(sim::CostModel model, int nprocs, std::size_t mult_w,
                     std::size_t mult_h)
    : model_(model),
      nprocs_(nprocs > 0 ? nprocs : 1),
      mult_w_(mult_w ? mult_w : 1),
      mult_h_(mult_h ? mult_h : 1),
      kernel_backend_(simd::active_backend_name()) {}

double Scheduler::compute_s(std::size_t m, std::size_t n, bool affine) const {
  const double cells =
      static_cast<double>(m) * static_cast<double>(n) / nprocs_;
  // Two linear arrays over this node's column share stream through cache.
  const std::size_t row_bytes =
      2 * (n / static_cast<std::size_t>(nprocs_)) * model_.heuristic_cell_bytes;
  double per_cell = model_.effective_cell(model_.cell_s_heuristic, row_bytes);
  if (affine) per_cell *= model_.affine_cell_factor_heuristic;
  return cells * per_cell;
}

double Scheduler::dsm_fetch_s(std::size_t bytes) const {
  // Page-faulting `bytes` of resident data in from the homes.
  const std::size_t pages =
      (bytes + model_.page_bytes - 1) / model_.page_bytes;
  return static_cast<double>(pages) *
         (model_.message_time(model_.page_bytes) + model_.proto_op_s);
}

void Scheduler::grid_shape(std::size_t m, std::size_t n, std::size_t& bands,
                           std::size_t& blocks) const {
  bands = std::max<std::size_t>(
      1, std::min(m, mult_h_ * static_cast<std::size_t>(nprocs_)));
  blocks = std::max<std::size_t>(
      1, std::min(n, mult_w_ * static_cast<std::size_t>(nprocs_)));
}

double Scheduler::wavefront_estimate(std::size_t m, std::size_t n, bool warm,
                                     bool affine) const {
  double est = compute_s(m, n, affine);
  if (nprocs_ > 1) {
    // Per matrix row: waitcv + border page fetch on the critical path, each
    // one control message plus handler software.
    est += static_cast<double>(m) * 2.0 *
           (model_.msg_latency_s + model_.proto_op_s);
  }
  if (!warm) {
    // Each node faults in only its own column slice of the subject.
    est += dsm_fetch_s(n / static_cast<std::size_t>(nprocs_));
  }
  return est;
}

double Scheduler::blocked_estimate(std::size_t m, std::size_t n, bool warm,
                                   bool affine) const {
  std::size_t bands = 0, blocks = 0;
  grid_shape(m, n, bands, blocks);
  double est = compute_s(m, n, affine);
  if (nprocs_ > 1) {
    // Per block: the boundary row is published home and page-faulted in by
    // the next band's owner, plus the wake-up signal.
    const std::size_t seg_bytes = (n / blocks + 1) * model_.heuristic_cell_bytes;
    const std::size_t seg_pages =
        (seg_bytes + model_.page_bytes - 1) / model_.page_bytes;
    const double per_block =
        static_cast<double>(seg_pages) *
            (model_.message_time(model_.page_bytes) + model_.proto_op_s) +
        model_.message_time(0);
    est += static_cast<double>(bands) * static_cast<double>(blocks) *
           per_block / nprocs_;
  }
  if (!warm) {
    // Every node pulls the whole subject through the DSM before computing.
    est += dsm_fetch_s(n);
  }
  return est;
}

double Scheduler::blocked_mp_estimate(std::size_t m, std::size_t n,
                                      bool affine) const {
  std::size_t bands = 0, blocks = 0;
  grid_shape(m, n, bands, blocks);
  double est = compute_s(m, n, affine);
  if (nprocs_ > 1) {
    // Boundary rows travel as direct messages: wire time only, no protocol
    // software, no page granularity.
    const std::size_t seg_bytes = (n / blocks + 1) * model_.heuristic_cell_bytes;
    est += static_cast<double>(bands) * static_cast<double>(blocks) *
           model_.message_time(seg_bytes) / nprocs_;
    // No residency on message passing: the subject is scattered to every
    // rank on each dispatch.
    est += static_cast<double>(nprocs_ - 1) * model_.message_time(n);
  }
  return est;
}

double Scheduler::exact_estimate(std::size_t m, std::size_t n,
                                 bool affine) const {
  const double cells =
      static_cast<double>(m) * static_cast<double>(n) / nprocs_;
  // The counting pass streams two int32 column arrays per chunk (four under
  // affine: the E/F companions double the working set).
  const std::size_t row_bytes = (affine ? 4u : 2u) *
                                (n / static_cast<std::size_t>(nprocs_)) *
                                model_.plain_cell_bytes;
  double est =
      cells * model_.effective_cell(
                  model_.plain_cell_s(kernel_backend_, affine), row_bytes);
  if (nprocs_ > 1) {
    // Each band publishes its bottom passage row home; the next band's
    // owner page-faults it back in.  Affine boundaries carry [H | E]
    // concatenated — twice the bytes per boundary.
    const std::size_t bands = std::max<std::size_t>(
        1, std::min(m, static_cast<std::size_t>(nprocs_)));
    est += static_cast<double>(bands) *
           dsm_fetch_s((affine ? 2u : 1u) * n * sizeof(std::int32_t)) /
           nprocs_;
  }
  return est;
}

double Scheduler::db_estimate(std::size_t m, std::size_t aligned_bases,
                              bool affine) const {
  // Survivor fragments are resident at their owners, so the scan's DP is
  // the whole bill: m x aligned_bases cells spread over the shards with the
  // score-only kernels (same per-cell price as the exact counting pass).
  const double cells = static_cast<double>(m) *
                       static_cast<double>(aligned_bases) / nprocs_;
  const std::size_t row_bytes =
      (affine ? 4u : 2u) * 256 * model_.plain_cell_bytes;
  double est =
      cells * model_.effective_cell(
                  model_.plain_cell_s(kernel_backend_, affine), row_bytes);
  if (nprocs_ > 1) {
    // Every remote node faults the query in from node 0 once per dispatch.
    est += dsm_fetch_s(m * sizeof(Base));
  }
  return est;
}

double Scheduler::db_cascade_estimate(std::size_t m,
                                      std::size_t aligned_bases,
                                      std::size_t seeds, bool affine) const {
  const double resolved = model_.cascade_resolve_rate;
  // The un-certified remainder pays the sharded kernel scan as before.
  double est = db_estimate(
      m,
      static_cast<std::size_t>(static_cast<double>(aligned_bases) *
                               (1.0 - resolved)),
      affine);
  // Host-side stages run on the serving node: seed chaining and ungapped
  // extension over the gathered occurrences, then the banded certified DP
  // for the resolved fraction — scalar work, so no kernel speedup and no
  // shard division.
  est += static_cast<double>(seeds) * model_.cascade_seed_s;
  est += resolved * model_.cascade_band_area * static_cast<double>(m) *
         static_cast<double>(aligned_bases) * model_.cell_s_plain *
         (affine ? model_.affine_cell_factor_scalar : 1.0);
  return est;
}

ScheduleDecision Scheduler::choose(const ScheduleInput& in) const {
  ScheduleDecision d;
  d.kernel_backend = kernel_backend_;
  d.est_wavefront_s = wavefront_estimate(in.query_len, in.subject_len,
                                         in.subject_warm, in.affine);
  d.est_blocked_s = blocked_estimate(in.query_len, in.subject_len,
                                     in.subject_warm, in.affine);
  d.est_blocked_mp_s =
      blocked_mp_estimate(in.query_len, in.subject_len, in.affine);
  d.strategy = StrategyKind::kWavefront;
  d.est_s = d.est_wavefront_s;
  if (d.est_blocked_s < d.est_s) {
    d.strategy = StrategyKind::kBlocked;
    d.est_s = d.est_blocked_s;
  }
  if (d.est_blocked_mp_s < d.est_s) {
    d.strategy = StrategyKind::kBlockedMp;
    d.est_s = d.est_blocked_mp_s;
  }
  return d;
}

}  // namespace gdsm::svc
