// Dependency-free JSON document model: a small value type with a
// deterministic writer and a strict parser.
//
// This is the serialization substrate of the observability layer (see
// docs/METRICS.md): every bench binary emits a schema-versioned RunReport
// through it, and tools/merge_reports + tools/validate_report read those
// files back.  Design points that matter for metrics files:
//
//  * objects preserve insertion order, so reports diff cleanly run-to-run;
//  * 64-bit integers survive a round trip exactly (protocol counters can
//    exceed 2^53, where doubles lose precision);
//  * doubles are written with std::to_chars shortest-round-trip form;
//  * non-finite doubles serialize as null (JSON has no NaN/Inf).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace gdsm::obs {

/// Thrown by Json::parse on malformed input; `what()` includes the byte
/// offset of the error.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& msg, std::size_t offset);
  std::size_t offset() const noexcept { return offset_; }

 private:
  std::size_t offset_;
};

class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  using Array = std::vector<Json>;
  /// Insertion-ordered; `set` replaces in place on duplicate keys.
  using Object = std::vector<std::pair<std::string, Json>>;

  Json() : v_(nullptr) {}
  Json(std::nullptr_t) : v_(nullptr) {}
  Json(bool b) : v_(b) {}
  Json(int i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(long long i) : v_(static_cast<std::int64_t>(i)) {}
  Json(unsigned u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(unsigned long long u) : v_(static_cast<std::uint64_t>(u)) {}
  Json(double d) : v_(d) {}
  Json(const char* s) : v_(std::string(s)) {}
  Json(std::string s) : v_(std::move(s)) {}
  Json(std::string_view s) : v_(std::string(s)) {}

  static Json array() { Json j; j.v_ = Array{}; return j; }
  static Json object() { Json j; j.v_ = Object{}; return j; }

  Kind kind() const noexcept { return static_cast<Kind>(v_.index()); }
  bool is_null() const noexcept { return kind() == Kind::kNull; }
  bool is_bool() const noexcept { return kind() == Kind::kBool; }
  bool is_number() const noexcept {
    return kind() == Kind::kInt || kind() == Kind::kUint || kind() == Kind::kDouble;
  }
  bool is_string() const noexcept { return kind() == Kind::kString; }
  bool is_array() const noexcept { return kind() == Kind::kArray; }
  bool is_object() const noexcept { return kind() == Kind::kObject; }

  bool as_bool() const { return std::get<bool>(v_); }
  /// Any numeric alternative, widened to double.
  double as_double() const;
  /// Exact only for kInt/kUint in range; throws otherwise.
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const { return std::get<std::string>(v_); }

  // -- array ----------------------------------------------------------------
  Json& push(Json v);
  const Array& items() const { return std::get<Array>(v_); }
  std::size_t size() const;

  // -- object ---------------------------------------------------------------
  /// Sets (or replaces) `key`; returns *this for chaining.
  Json& set(std::string key, Json v);
  bool has(std::string_view key) const;
  /// Member lookup; throws std::out_of_range when absent.
  const Json& at(std::string_view key) const;
  /// Member lookup returning nullptr when absent (or not an object).
  const Json* find(std::string_view key) const noexcept;
  /// Mutable member access, inserting a null member when absent.
  Json& operator[](std::string key);
  const Object& members() const { return std::get<Object>(v_); }

  // -- io -------------------------------------------------------------------
  /// Pretty-prints with `indent` spaces per level (0 = compact one-liner).
  std::string dump(int indent = 2) const;
  void write(std::ostream& out, int indent = 2) const;

  /// Strict parser (no comments, no trailing commas, UTF-8 passed through).
  /// Throws JsonParseError on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  /// Structural equality; integral numbers compare by value across the
  /// int/uint alternatives (a uint64 counter parses back as kInt when it
  /// fits, and must still compare equal).
  bool operator==(const Json& other) const;
  bool operator!=(const Json& other) const { return !(*this == other); }

 private:
  void write_impl(std::ostream& out, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, std::uint64_t, double,
               std::string, Array, Object>
      v_;
};

/// JSON string escaping of `s` (without the surrounding quotes).
std::string json_escape(std::string_view s);

}  // namespace gdsm::obs
