#include "obs/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

namespace gdsm::obs {

JsonParseError::JsonParseError(const std::string& msg, std::size_t offset)
    : std::runtime_error(msg + " at offset " + std::to_string(offset)),
      offset_(offset) {}

double Json::as_double() const {
  switch (kind()) {
    case Kind::kInt: return static_cast<double>(std::get<std::int64_t>(v_));
    case Kind::kUint: return static_cast<double>(std::get<std::uint64_t>(v_));
    case Kind::kDouble: return std::get<double>(v_);
    default: throw std::runtime_error("Json::as_double: not a number");
  }
}

std::int64_t Json::as_int() const {
  if (kind() == Kind::kInt) return std::get<std::int64_t>(v_);
  if (kind() == Kind::kUint) {
    const auto u = std::get<std::uint64_t>(v_);
    if (u > static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
      throw std::runtime_error("Json::as_int: value exceeds int64");
    }
    return static_cast<std::int64_t>(u);
  }
  throw std::runtime_error("Json::as_int: not an integer");
}

std::uint64_t Json::as_uint() const {
  if (kind() == Kind::kUint) return std::get<std::uint64_t>(v_);
  if (kind() == Kind::kInt) {
    const auto i = std::get<std::int64_t>(v_);
    if (i < 0) throw std::runtime_error("Json::as_uint: negative value");
    return static_cast<std::uint64_t>(i);
  }
  throw std::runtime_error("Json::as_uint: not an integer");
}

Json& Json::push(Json v) {
  if (!is_array()) throw std::runtime_error("Json::push: not an array");
  std::get<Array>(v_).push_back(std::move(v));
  return *this;
}

std::size_t Json::size() const {
  if (is_array()) return std::get<Array>(v_).size();
  if (is_object()) return std::get<Object>(v_).size();
  throw std::runtime_error("Json::size: not a container");
}

Json& Json::set(std::string key, Json v) {
  if (!is_object()) throw std::runtime_error("Json::set: not an object");
  auto& obj = std::get<Object>(v_);
  for (auto& [k, old] : obj) {
    if (k == key) {
      old = std::move(v);
      return *this;
    }
  }
  obj.emplace_back(std::move(key), std::move(v));
  return *this;
}

bool Json::has(std::string_view key) const { return find(key) != nullptr; }

const Json& Json::at(std::string_view key) const {
  if (const Json* p = find(key)) return *p;
  throw std::out_of_range("Json::at: missing key '" + std::string(key) + "'");
}

Json& Json::operator[](std::string key) {
  if (!is_object()) throw std::runtime_error("Json::operator[]: not an object");
  auto& obj = std::get<Object>(v_);
  for (auto& [k, v] : obj) {
    if (k == key) return v;
  }
  obj.emplace_back(std::move(key), Json());
  return obj.back().second;
}

const Json* Json::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : std::get<Object>(v_)) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    const auto c = static_cast<unsigned char>(ch);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += ch;  // UTF-8 bytes pass through unescaped
        }
    }
  }
  return out;
}

namespace {

void write_double(std::ostream& out, double d) {
  if (!std::isfinite(d)) {
    out << "null";  // JSON has no NaN/Inf; documented in docs/METRICS.md
    return;
  }
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, d);
  std::string_view text(buf, static_cast<std::size_t>(res.ptr - buf));
  out << text;
  // Keep doubles recognizably doubles ("3" -> "3e0" would be ugly; emit
  // "3.0") so a round trip preserves the numeric kind.
  if (text.find('.') == std::string_view::npos &&
      text.find('e') == std::string_view::npos &&
      text.find("inf") == std::string_view::npos) {
    out << ".0";
  }
}

}  // namespace

void Json::write_impl(std::ostream& out, int indent, int depth) const {
  const std::string pad(static_cast<std::size_t>(indent * (depth + 1)), ' ');
  const std::string close_pad(static_cast<std::size_t>(indent * depth), ' ');
  const char* nl = indent > 0 ? "\n" : "";
  switch (kind()) {
    case Kind::kNull: out << "null"; break;
    case Kind::kBool: out << (std::get<bool>(v_) ? "true" : "false"); break;
    case Kind::kInt: out << std::get<std::int64_t>(v_); break;
    case Kind::kUint: out << std::get<std::uint64_t>(v_); break;
    case Kind::kDouble: write_double(out, std::get<double>(v_)); break;
    case Kind::kString: out << '"' << json_escape(std::get<std::string>(v_)) << '"'; break;
    case Kind::kArray: {
      const auto& arr = std::get<Array>(v_);
      if (arr.empty()) {
        out << "[]";
        break;
      }
      out << '[' << nl;
      for (std::size_t i = 0; i < arr.size(); ++i) {
        out << pad;
        arr[i].write_impl(out, indent, depth + 1);
        if (i + 1 < arr.size()) out << ',';
        out << nl;
      }
      out << close_pad << ']';
      break;
    }
    case Kind::kObject: {
      const auto& obj = std::get<Object>(v_);
      if (obj.empty()) {
        out << "{}";
        break;
      }
      out << '{' << nl;
      for (std::size_t i = 0; i < obj.size(); ++i) {
        out << pad << '"' << json_escape(obj[i].first) << "\":";
        if (indent > 0) out << ' ';
        obj[i].second.write_impl(out, indent, depth + 1);
        if (i + 1 < obj.size()) out << ',';
        out << nl;
      }
      out << close_pad << '}';
      break;
    }
  }
}

void Json::write(std::ostream& out, int indent) const {
  write_impl(out, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream out;
  write(out, indent);
  return out.str();
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonParseError(msg, pos_);
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      --pos_;
      fail(std::string("expected '") + c + "'");
    }
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') ++pos_;
      else break;
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(std::move(key), parse_value());
      skip_ws();
      const char sep = take();
      if (sep == '}') return obj;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or '}' in object");
      }
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      const char sep = take();
      if (sep == ']') return arr;
      if (sep != ',') {
        --pos_;
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        --pos_;
        fail("unescaped control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': append_codepoint(out); break;
        default:
          --pos_;
          fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = take();
      cp <<= 4;
      if (c >= '0' && c <= '9') cp |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') cp |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') cp |= static_cast<unsigned>(c - 'A' + 10);
      else {
        --pos_;
        fail("invalid \\u escape digit");
      }
    }
    return cp;
  }

  void append_codepoint(std::string& out) {
    unsigned cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
      if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
        pos_ += 2;
        const unsigned lo = parse_hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("unpaired high surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("unpaired low surrogate");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    bool integral = true;
    if (pos_ < text_.size() && text_[pos_] == '.') {
      integral = false;
      ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      integral = false;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("invalid number");
    if (integral) {
      if (tok[0] == '-') {
        std::int64_t i = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), i);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) return Json(i);
      } else {
        std::uint64_t u = 0;
        const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), u);
        if (res.ec == std::errc() && res.ptr == tok.data() + tok.size()) {
          // Small non-negative integers read back as kInt, matching how the
          // report builders construct them; kUint is reserved for the range
          // only uint64 can hold.
          if (u <= static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max())) {
            return Json(static_cast<std::int64_t>(u));
          }
          return Json(u);
        }
      }
      // Integral-looking but out of 64-bit range: fall through to double.
    }
    double d = 0;
    const auto res = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (res.ec != std::errc() || res.ptr != tok.data() + tok.size()) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Json Json::parse(std::string_view text) { return Parser(text).parse_document(); }

bool Json::operator==(const Json& other) const {
  const bool a_int = kind() == Kind::kInt || kind() == Kind::kUint;
  const bool b_int = other.kind() == Kind::kInt || other.kind() == Kind::kUint;
  if (a_int && b_int) {
    const bool a_neg = kind() == Kind::kInt && std::get<std::int64_t>(v_) < 0;
    const bool b_neg =
        other.kind() == Kind::kInt && std::get<std::int64_t>(other.v_) < 0;
    if (a_neg != b_neg) return false;
    if (a_neg) {
      return std::get<std::int64_t>(v_) == std::get<std::int64_t>(other.v_);
    }
    return as_uint() == other.as_uint();
  }
  return v_ == other.v_;
}

}  // namespace gdsm::obs
