#include "obs/snapshots.h"

#include "db/meter.h"
#include "net/message.h"
#include "simd/dispatch.h"

namespace gdsm::obs {

Json to_json(const net::TrafficCounters& tc) {
  Json j = Json::object();
  j.set("messages", tc.total_messages());
  j.set("bytes", tc.total_bytes());
  Json by_type = Json::object();
  for (int i = 0; i < net::kNumMsgTypes; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    if (tc.messages[idx] == 0 && tc.bytes[idx] == 0) continue;
    Json entry = Json::object();
    entry.set("messages", tc.messages[idx]);
    entry.set("bytes", tc.bytes[idx]);
    by_type.set(net::msg_type_name(static_cast<net::MsgType>(i)), std::move(entry));
  }
  j.set("by_type", std::move(by_type));
  return j;
}

Json to_json(const net::FaultCounters& fc) {
  Json j = Json::object();
  j.set("faulted_messages", fc.faulted_messages);
  j.set("drops", fc.drops);
  j.set("retransmits", fc.retransmits);
  j.set("delays", fc.delays);
  j.set("reorder_holds", fc.reorder_holds);
  j.set("duplicates_suppressed", fc.duplicates_suppressed);
  j.set("partition_stalls", fc.partition_stalls);
  return j;
}

Json to_json(const dsm::NodeStats& ns) {
  Json j = Json::object();
  j.set("read_faults", ns.read_faults);
  j.set("cache_hits", ns.cache_hits);
  j.set("write_faults", ns.write_faults);
  j.set("diffs_sent", ns.diffs_sent);
  j.set("diff_bytes", ns.diff_bytes);
  j.set("invalidations", ns.invalidations);
  j.set("evictions", ns.evictions);
  j.set("lock_acquires", ns.lock_acquires);
  j.set("lock_releases", ns.lock_releases);
  j.set("barriers", ns.barriers);
  j.set("cv_signals", ns.cv_signals);
  j.set("cv_waits", ns.cv_waits);
  j.set("request_timeouts", ns.request_timeouts);
  j.set("request_retries", ns.request_retries);
  j.set("stale_replies", ns.stale_replies);
  j.set("dp_cells", ns.dp_cells);
  j.set("diff_batches_sent", ns.diff_batches_sent);
  j.set("diff_pages_batched", ns.diff_pages_batched);
  j.set("bulk_fetches", ns.bulk_fetches);
  j.set("bulk_pages_fetched", ns.bulk_pages_fetched);
  j.set("prefetch_issued", ns.prefetch_issued);
  j.set("prefetch_hits", ns.prefetch_hits);
  j.set("prefetch_wasted", ns.prefetch_wasted);
  j.set("empty_diffs_suppressed", ns.empty_diffs_suppressed);
  j.set("peer_failures", ns.peer_failures);
  j.set("segv_faults", ns.segv_faults);
  j.set("pages_mapped", ns.pages_mapped);
  j.set("pages_protected", ns.pages_protected);
  j.set("twins_created", ns.twins_created);
  j.set("socket_bytes_sent", ns.socket_bytes_sent);
  j.set("socket_bytes_received", ns.socket_bytes_received);
  return j;
}

Json to_json(const dsm::DsmStats& stats) {
  Json j = Json::object();
  j.set("backend", dsm::backend_name(stats.backend));
  Json nodes = Json::array();
  for (const auto& n : stats.node) nodes.push(to_json(n));
  j.set("nodes", std::move(nodes));
  Json traffic = Json::array();
  for (const auto& t : stats.traffic) traffic.push(to_json(t));
  j.set("traffic", std::move(traffic));
  Json totals = Json::object();
  totals.set("node", to_json(stats.total_node()));
  totals.set("traffic", to_json(stats.total_traffic()));
  j.set("totals", std::move(totals));
  j.set("home_migrations", stats.home_migrations);
  j.set("faults", to_json(stats.faults));
  return j;
}

Json to_json(const sim::Breakdown& bd) {
  Json j = Json::object();
  j.set("computation_s", bd[sim::Cat::kCompute]);
  j.set("communication_s", bd[sim::Cat::kComm]);
  j.set("lock_cv_s", bd[sim::Cat::kLockCv]);
  j.set("barrier_s", bd[sim::Cat::kBarrier]);
  j.set("io_s", bd[sim::Cat::kIo]);
  j.set("total_s", bd.total());
  return j;
}

Json space_usage_json(const dsm::GlobalSpace& space) {
  Json j = Json::object();
  const std::size_t pages = space.num_pages();
  j.set("pages", pages);
  j.set("bytes", pages * space.page_bytes());
  j.set("page_bytes", space.page_bytes());
  Json per_node = Json::array();
  for (const std::size_t n : space.pages_per_node()) per_node.push(n);
  j.set("pages_per_node", std::move(per_node));
  return j;
}

namespace {

Json kernel_counters_json(const simd::KernelCounters& kc, bool host_clock) {
  Json j = Json::object();
  j.set("calls", kc.calls);
  j.set("cells", kc.cells);
  if (host_clock) {
    j.set("seconds", kc.seconds);
    j.set("cells_per_second", kc.seconds > 0.0 ? kc.cells / kc.seconds : 0.0);
  }
  return j;
}

}  // namespace

Json kernel_stats_json(bool host_clock) {
  const simd::KernelStats ks = simd::kernel_stats();
  Json j = Json::object();
  j.set("backend", ks.backend);
  j.set("best", kernel_counters_json(ks.best, host_clock));
  j.set("count", kernel_counters_json(ks.count, host_clock));
  j.set("hits", kernel_counters_json(ks.hits, host_clock));
  j.set("nw", kernel_counters_json(ks.nw, host_clock));
  j.set("nw_affine", kernel_counters_json(ks.nw_affine, host_clock));
  // v6: which gap models this run's kernels served.  The linear counters
  // above aggregate both models (one dispatch table serves both); the
  // affine-only nw_affine block plus this marker lets consumers split runs.
  Json gaps = Json::object();
  gaps.set("nw_affine_calls", ks.nw_affine.calls);
  gaps.set("nw_affine_cells", ks.nw_affine.cells);
  j.set("gap_models", std::move(gaps));
  // v9: striped query-profile kernel activity (docs/METRICS.md
  // "kernel.striped").  All-zero when no striped backend ran.
  Json striped = Json::object();
  striped.set("sweeps8", ks.striped.sweeps8);
  striped.set("sweeps16", ks.striped.sweeps16);
  striped.set("cells8", ks.striped.cells8);
  striped.set("cells16", ks.striped.cells16);
  striped.set("overflow_reruns", ks.striped.overflow_reruns);
  striped.set("fallback32", ks.striped.fallback32);
  striped.set("delegated", ks.striped.delegated);
  striped.set("profile_builds", ks.striped.profile_builds);
  striped.set("profile_hits", ks.striped.profile_hits);
  j.set("striped", std::move(striped));
  return j;
}

Json comm_stats_json() {
  const dsm::NodeStats totals = dsm::comm_totals();
  Json j = Json::object();
  j.set("mode", dsm::comm_mode_name(dsm::default_comm()));
  j.set("diff_batches_sent", totals.diff_batches_sent);
  j.set("diff_pages_batched", totals.diff_pages_batched);
  j.set("bulk_fetches", totals.bulk_fetches);
  j.set("bulk_pages_fetched", totals.bulk_pages_fetched);
  j.set("prefetch_issued", totals.prefetch_issued);
  j.set("prefetch_hits", totals.prefetch_hits);
  j.set("prefetch_wasted", totals.prefetch_wasted);
  j.set("empty_diffs_suppressed", totals.empty_diffs_suppressed);
  j.set("round_trips_saved", totals.round_trips_saved());
  return j;
}

Json db_stats_json() {
  const db::DbMeterSnapshot s = db::db_meter_snapshot();
  Json j = Json::object();
  j.set("queries", s.queries);
  j.set("fragments_scanned", s.fragments_scanned);
  j.set("fragments_rejected", s.fragments_rejected);
  j.set("fragments_aligned", s.fragments_aligned);
  j.set("filtration_rate", s.filtration_rate());
  j.set("hits", s.hits);
  Json cascade = Json::object();
  cascade.set("seeds", s.cascade.seeds);
  cascade.set("chains", s.cascade.chains);
  cascade.set("extensions", s.cascade.extensions);
  cascade.set("dp_skipped_by_bound", s.cascade.dp_skipped_by_bound);
  cascade.set("dp_confirmed", s.cascade.dp_confirmed);
  cascade.set("index_mmap_hits", s.cascade.index_mmap_hits);
  j.set("cascade", std::move(cascade));
  Json balance = Json::object();
  Json bases = Json::array();
  for (const std::uint64_t b : s.node_bases) bases.push(b);
  balance.set("node_bases", std::move(bases));
  Json aligned = Json::array();
  for (const std::uint64_t a : s.node_aligned) aligned.push(a);
  balance.set("node_aligned", std::move(aligned));
  j.set("shard_balance", std::move(balance));
  return j;
}

Json dsm_backend_json() {
  const dsm::NodeStats totals = dsm::comm_totals();
  Json j = Json::object();
  j.set("backend", dsm::backend_name(dsm::default_backend()));
  j.set("peer_failures", totals.peer_failures);
  j.set("segv_faults", totals.segv_faults);
  j.set("pages_mapped", totals.pages_mapped);
  j.set("pages_protected", totals.pages_protected);
  j.set("twins_created", totals.twins_created);
  j.set("socket_bytes_sent", totals.socket_bytes_sent);
  j.set("socket_bytes_received", totals.socket_bytes_received);
  return j;
}

}  // namespace gdsm::obs
