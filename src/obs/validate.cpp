#include "obs/validate.h"

#include <string>

#include "obs/report.h"

namespace gdsm::obs {
namespace {

bool any_positive_read_faults(const Json& j) {
  switch (j.kind()) {
    case Json::Kind::kObject:
      for (const auto& [key, value] : j.members()) {
        if (key == "read_faults" && value.is_number() &&
            value.as_double() > 0) {
          return true;
        }
        if (any_positive_read_faults(value)) return true;
      }
      return false;
    case Json::Kind::kArray:
      for (const Json& item : j.items()) {
        if (any_positive_read_faults(item)) return true;
      }
      return false;
    default:
      return false;
  }
}

}  // namespace

std::string validate_run_report(const Json& doc, bool require_read_faults) {
  if (!doc.is_object()) return "top level is not an object";

  for (const char* key : {"schema", "schema_version", "experiment", "title",
                          "build", "params", "metrics", "series"}) {
    if (!doc.has(key)) return std::string("missing key '") + key + "'";
  }
  if (doc.at("schema").as_string() != kReportSchema) {
    return "schema is not " + std::string(kReportSchema);
  }
  if (!doc.at("schema_version").is_number() ||
      doc.at("schema_version").as_int() < kSchemaVersionMin ||
      doc.at("schema_version").as_int() > kSchemaVersion) {
    return "schema_version outside [" + std::to_string(kSchemaVersionMin) +
           ", " + std::to_string(kSchemaVersion) + "]";
  }
  if (doc.at("experiment").as_string().empty()) {
    return "empty experiment id";
  }
  if (!doc.at("build").is_object() || !doc.at("build").has("git") ||
      doc.at("build").at("git").as_string().empty()) {
    return "missing build.git provenance";
  }
  const Json& series = doc.at("series");
  if (!series.is_object()) return "series is not an object";
  if (series.members().empty()) return "series is empty";
  for (const auto& [name, arr] : series.members()) {
    if (!arr.is_array() || arr.items().empty()) {
      return "series '" + name + "' is not a non-empty array";
    }
    for (std::size_t r = 0; r < arr.items().size(); ++r) {
      if (!arr.items()[r].is_object()) {
        return "series '" + name + "' row " + std::to_string(r) +
               " is not an object";
      }
    }
  }

  if (doc.at("schema_version").as_int() >= 4) {
    // v4: the kernel section names the dispatched backend and carries the
    // four per-kernel counter blocks.
    const Json* sections = doc.find("sections");
    const Json* kernel = sections ? sections->find("kernel") : nullptr;
    if (kernel == nullptr || !kernel->is_object()) {
      return "v4 report without sections.kernel";
    }
    const Json* backend = kernel->find("backend");
    if (backend == nullptr || !backend->is_string() ||
        backend->as_string().empty()) {
      return "sections.kernel.backend missing or empty";
    }
    for (const char* k : {"best", "count", "hits", "nw"}) {
      const Json* counters = kernel->find(k);
      if (counters == nullptr || !counters->is_object() ||
          counters->find("calls") == nullptr ||
          counters->find("cells") == nullptr) {
        return std::string("sections.kernel.") + k + " missing calls/cells";
      }
    }
  }

  if (doc.at("schema_version").as_int() >= 5) {
    // v5: the comm section names the DSM data-plane mode and carries the
    // batched-plane counters.
    const Json* sections = doc.find("sections");
    const Json* comm = sections ? sections->find("comm") : nullptr;
    if (comm == nullptr || !comm->is_object()) {
      return "v5 report without sections.comm";
    }
    const Json* mode = comm->find("mode");
    if (mode == nullptr || !mode->is_string() || mode->as_string().empty()) {
      return "sections.comm.mode missing or empty";
    }
    for (const char* k :
         {"diff_batches_sent", "diff_pages_batched", "bulk_fetches",
          "bulk_pages_fetched", "prefetch_issued", "prefetch_hits",
          "prefetch_wasted", "empty_diffs_suppressed", "round_trips_saved"}) {
      const Json* counter = comm->find(k);
      if (counter == nullptr || !counter->is_number()) {
        return std::string("sections.comm.") + k + " missing or not a number";
      }
    }
  }

  if (doc.at("schema_version").as_int() >= 6) {
    // v6: affine gap support — the kernel section must carry the nw_affine
    // counter block and the gap_models marker object.
    const Json* sections = doc.find("sections");
    const Json* kernel = sections ? sections->find("kernel") : nullptr;
    const Json* nw_affine =
        kernel != nullptr ? kernel->find("nw_affine") : nullptr;
    if (nw_affine == nullptr || !nw_affine->is_object() ||
        nw_affine->find("calls") == nullptr ||
        nw_affine->find("cells") == nullptr) {
      return "v6 report without sections.kernel.nw_affine calls/cells "
             "(affine gap-model counters; see docs/METRICS.md v6)";
    }
    const Json* gaps = kernel->find("gap_models");
    if (gaps == nullptr || !gaps->is_object()) {
      return "v6 report without sections.kernel.gap_models (gap-model "
             "field required from schema v6; see docs/METRICS.md)";
    }
  }

  if (doc.at("schema_version").as_int() >= 7) {
    // v7: database serving — the db section carries the filtration totals
    // and the shard_balance arrays.
    const Json* sections = doc.find("sections");
    const Json* db = sections ? sections->find("db") : nullptr;
    if (db == nullptr || !db->is_object()) {
      return "v7 report without sections.db (database-serving counters; "
             "see docs/METRICS.md v7)";
    }
    for (const char* k : {"queries", "fragments_scanned", "fragments_rejected",
                          "fragments_aligned", "filtration_rate", "hits"}) {
      const Json* counter = db->find(k);
      if (counter == nullptr || !counter->is_number()) {
        return std::string("sections.db.") + k + " missing or not a number";
      }
    }
    const Json* balance = db->find("shard_balance");
    if (balance == nullptr || !balance->is_object() ||
        balance->find("node_bases") == nullptr ||
        !balance->find("node_bases")->is_array() ||
        balance->find("node_aligned") == nullptr ||
        !balance->find("node_aligned")->is_array()) {
      return "v7 report without sections.db.shard_balance node_bases/"
             "node_aligned arrays";
    }
  }

  if (doc.at("schema_version").as_int() >= 8) {
    // v8: multi-process DSM backend — the dsm section names the execution
    // backend and carries the process-backend counters.
    const Json* sections = doc.find("sections");
    const Json* dsm = sections ? sections->find("dsm") : nullptr;
    if (dsm == nullptr || !dsm->is_object()) {
      return "v8 report without sections.dsm (DSM backend counters; "
             "see docs/METRICS.md v8)";
    }
    const Json* backend = dsm->find("backend");
    if (backend == nullptr || !backend->is_string() ||
        (backend->as_string() != "threads" &&
         backend->as_string() != "process")) {
      return "sections.dsm.backend missing or not threads|process";
    }
    for (const char* k :
         {"peer_failures", "segv_faults", "pages_mapped", "pages_protected",
          "twins_created", "socket_bytes_sent", "socket_bytes_received"}) {
      const Json* counter = dsm->find(k);
      if (counter == nullptr || !counter->is_number()) {
        return std::string("sections.dsm.") + k + " missing or not a number";
      }
    }
  }

  if (doc.at("schema_version").as_int() >= 9) {
    // v9: striped query-profile kernels — the kernel section carries the
    // striped activity object (precision-ladder and profile-cache counters).
    const Json* sections = doc.find("sections");
    const Json* kernel = sections ? sections->find("kernel") : nullptr;
    const Json* striped =
        kernel && kernel->is_object() ? kernel->find("striped") : nullptr;
    if (striped == nullptr || !striped->is_object()) {
      return "v9 report without sections.kernel.striped (striped-kernel "
             "counters; see docs/METRICS.md v9)";
    }
    for (const char* k :
         {"sweeps8", "sweeps16", "cells8", "cells16", "overflow_reruns",
          "fallback32", "delegated", "profile_builds", "profile_hits"}) {
      const Json* counter = striped->find(k);
      if (counter == nullptr || !counter->is_number()) {
        return std::string("sections.kernel.striped.") + k +
               " missing or not a number";
      }
    }
  }

  if (doc.at("schema_version").as_int() >= 10) {
    // v10: cascaded seed-and-extend db scan — the db section carries the
    // cascade funnel counters.
    const Json* sections = doc.find("sections");
    const Json* db = sections ? sections->find("db") : nullptr;
    const Json* cascade =
        db && db->is_object() ? db->find("cascade") : nullptr;
    if (cascade == nullptr || !cascade->is_object()) {
      return "v10 report without sections.db.cascade (seed-and-extend "
             "funnel counters; see docs/METRICS.md v10)";
    }
    for (const char* k : {"seeds", "chains", "extensions",
                          "dp_skipped_by_bound", "dp_confirmed",
                          "index_mmap_hits"}) {
      const Json* counter = cascade->find(k);
      if (counter == nullptr || !counter->is_number()) {
        return std::string("sections.db.cascade.") + k +
               " missing or not a number";
      }
    }
  }

  if (require_read_faults && !any_positive_read_faults(doc)) {
    return "no positive read_faults counter found (--require-read-faults)";
  }

  return {};
}

}  // namespace gdsm::obs
