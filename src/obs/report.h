// Machine-readable run reports: the JSON counterpart of the ASCII tables
// every bench binary prints.
//
// A RunReport is one experiment execution: identity (experiment id, title),
// build provenance (git describe), the parameters the run was invoked with,
// flat scalar metrics, and named row series mirroring the human tables.
// The full schema is documented in docs/METRICS.md; kSchemaVersion is bumped
// whenever a field changes meaning, so downstream consumers (the perf
// trajectory in BENCH_baseline.json) can detect incompatible files.
#pragma once

#include <iosfwd>
#include <string>

#include "obs/json.h"

namespace gdsm::obs {

/// Identifies the document layout described in docs/METRICS.md.
inline constexpr const char* kReportSchema = "gdsm.run_report";
/// v2: NodeStats gained the retry-layer counters (request_timeouts,
/// request_retries, stale_replies) and DsmStats/strategy snapshots gained
/// the injected-fault block ("faults": drops, retransmits, delays, ...).
/// v3: NodeStats gained cache_hits (page-cache residency) and service
/// reports emit the "service" section (admission, batching, latency
/// histograms — docs/SERVICE.md).
/// v4: every report carries the "kernel" section (active SIMD backend plus
/// per-kernel call/cell counters; throughput only under params.host_clock)
/// and NodeStats gained dp_cells — docs/KERNELS.md.
/// v5: every report carries the "comm" section (data-plane mode plus the
/// batched-plane counters: diff batches, bulk fetches, prefetch hits/wasted,
/// suppressed empty diffs, round_trips_saved) and NodeStats gained the same
/// per-node counters — docs/METRICS.md "comm".
/// v6: affine (Gotoh) gap support — the "kernel" section gained the
/// nw_affine counters and a "gap_models" object naming the gap models the
/// run dispatched; service reports add gap_models counters and benches that
/// sweep gap models carry a gap_model column in their series
/// (docs/METRICS.md "gap models", docs/ALGORITHMS.md).
/// v7: database serving — every report carries the "db" section (queries,
/// fragments scanned/rejected/aligned, filtration_rate, hits, and a
/// shard_balance object with per-node resident bases and aligned-fragment
/// counts — docs/METRICS.md "db", docs/SERVICE.md "Database serving").
/// v8: multi-process DSM backend — every report carries the "dsm" section
/// (backend: "threads"|"process", plus the process-backend totals:
/// peer_failures, segv_faults, pages_mapped/protected, twins_created,
/// socket bytes) and NodeStats gained the same per-node counters
/// (docs/METRICS.md "dsm", DESIGN.md "Process backend").
/// v9: striped query-profile kernels — the "kernel" section gained a
/// "striped" object (8/16-bit sweep and cell counts, overflow re-runs,
/// 32-bit fallbacks, delegated blocks, query-profile cache builds/hits) and
/// the backend vocabulary grew the striped-* names
/// (docs/METRICS.md "kernel.striped", docs/KERNELS.md "Striped
/// query-profile kernels").
/// v10: cascaded seed-and-extend db scan — the "db" section gained
/// fragments_resolved and a "cascade" object (seeds, chains, extensions,
/// dp_skipped_by_bound, dp_confirmed, index_mmap_hits) covering the
/// certified middle stage and the persisted mmap q-gram index
/// (docs/METRICS.md "db.cascade", docs/SERVICE.md "Cascade").
inline constexpr int kSchemaVersion = 10;
/// Oldest schema version tools still accept (v3 files predate the kernel
/// and comm sections but are otherwise field-compatible).
inline constexpr int kSchemaVersionMin = 3;

/// Schema of the merged baseline produced by tools/merge_reports.
inline constexpr const char* kBaselineSchema = "gdsm.baseline";

/// `git describe --always --dirty` of the tree this binary was configured
/// from ("unknown" outside a git checkout).  Captured at CMake configure
/// time; re-run cmake after committing to refresh it.
const char* build_version() noexcept;

/// Flat name -> scalar metric store.  Names use dotted lower_snake paths
/// ("phase1.total_s"); units are part of the name suffix (docs/METRICS.md).
class MetricsRegistry {
 public:
  void set(const std::string& name, Json value);
  /// Accumulates onto an existing numeric metric (0 if absent).
  void add(const std::string& name, double delta);
  bool has(const std::string& name) const { return values_.has(name); }

  /// Insertion-ordered {name: value} object.
  const Json& to_json() const { return values_; }

 private:
  Json values_ = Json::object();
};

class RunReport {
 public:
  /// `experiment` is the stable machine id (the bench binary's name);
  /// `title` is the human table caption.
  RunReport(std::string experiment, std::string title);

  const std::string& experiment() const noexcept { return experiment_; }

  /// Invocation parameter (sequence size, processor counts, ...).
  void set_param(const std::string& key, Json value);

  MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Appends one row to the named series (creating it on first use).
  /// Rows must be objects; series mirror the bench's printed tables.
  void add_row(const std::string& series, Json row);

  /// Attaches a named free-form section (environment snapshots, notes).
  void set_section(const std::string& name, Json value);

  /// The full schema-versioned document.
  Json to_json() const;

  void write(std::ostream& out) const;
  /// Writes the document to `path`; returns false (and reports on stderr)
  /// when the file cannot be written.
  bool write_file(const std::string& path) const;

 private:
  std::string experiment_;
  std::string title_;
  Json params_ = Json::object();
  MetricsRegistry metrics_;
  Json series_ = Json::object();
  Json sections_ = Json::object();
};

}  // namespace gdsm::obs
