// Schema validation for gdsm.run_report documents (docs/METRICS.md).
//
// The rules live here, in the library, so both tools/validate_report (the
// CLI used by the bench_smoke ctest label and tools/ci.sh) and the unit
// tests (tests/obs_test.cpp) exercise the very same checks — a report the
// tests accept cannot be rejected by CI, and vice versa.
#pragma once

#include <string>

#include "obs/json.h"

namespace gdsm::obs {

/// Checks `doc` against the gdsm.run_report schema, honouring the
/// document's own schema_version: versioned sections (v4 kernel, v5 comm,
/// v6 affine gap-model fields) are required from their introducing version
/// on.  Accepts versions [kSchemaVersionMin, kSchemaVersion].
///
/// Returns the empty string when the document is valid, otherwise a
/// one-line human-readable reason (the CLI prints it verbatim).
///
/// When `require_read_faults` is set, additionally demands some
/// "read_faults" counter anywhere in the document be > 0 — i.e. the run
/// really drove the DSM, not just the simulator.
std::string validate_run_report(const Json& doc,
                                bool require_read_faults = false);

}  // namespace gdsm::obs
