#include "obs/report.h"

#include <fstream>
#include <iostream>

#include "obs/snapshots.h"

namespace gdsm::obs {

#ifndef GDSM_GIT_DESCRIBE
#define GDSM_GIT_DESCRIBE "unknown"
#endif

const char* build_version() noexcept { return GDSM_GIT_DESCRIBE; }

void MetricsRegistry::set(const std::string& name, Json value) {
  values_.set(name, std::move(value));
}

void MetricsRegistry::add(const std::string& name, double delta) {
  const Json* existing = values_.find(name);
  const double base = existing && existing->is_number() ? existing->as_double() : 0.0;
  values_.set(name, Json(base + delta));
}

RunReport::RunReport(std::string experiment, std::string title)
    : experiment_(std::move(experiment)), title_(std::move(title)) {}

void RunReport::set_param(const std::string& key, Json value) {
  params_.set(key, std::move(value));
}

void RunReport::add_row(const std::string& series, Json row) {
  if (!row.is_object()) {
    throw std::runtime_error("RunReport::add_row: rows must be objects");
  }
  Json& arr = series_[series];
  if (arr.is_null()) arr = Json::array();
  arr.push(std::move(row));
}

void RunReport::set_section(const std::string& name, Json value) {
  sections_.set(name, std::move(value));
}

Json RunReport::to_json() const {
  Json doc = Json::object();
  doc.set("schema", kReportSchema);
  doc.set("schema_version", kSchemaVersion);
  doc.set("experiment", experiment_);
  doc.set("title", title_);
  Json build = Json::object();
  build.set("git", build_version());
  doc.set("build", std::move(build));
  doc.set("params", params_);
  doc.set("metrics", metrics_.to_json());
  doc.set("series", series_);
  Json sections = sections_;
  if (sections.find("kernel") == nullptr) {
    // v4: every report names the dispatched backend and its cell counters;
    // wall-clock-derived throughput only where params.host_clock says the
    // numbers are this machine's.
    const Json* hc = params_.find("host_clock");
    sections.set("kernel",
                 kernel_stats_json(hc != nullptr && hc->is_bool() && hc->as_bool()));
  }
  if (sections.find("comm") == nullptr) {
    // v5: every report names the DSM data-plane mode and its aggregation
    // counters (process-wide totals, like the kernel section).
    sections.set("comm", comm_stats_json());
  }
  if (sections.find("db") == nullptr) {
    // v7: every report carries the database-serving totals (zeros for runs
    // that never touched a SubjectDb, like the kernel/comm sections).
    sections.set("db", db_stats_json());
  }
  if (sections.find("dsm") == nullptr) {
    // v8: every report names the DSM execution backend and carries the
    // process-backend totals (all zero under the thread backend).
    sections.set("dsm", dsm_backend_json());
  }
  doc.set("sections", std::move(sections));
  return doc;
}

void RunReport::write(std::ostream& out) const {
  to_json().write(out, 2);
  out << "\n";
}

bool RunReport::write_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    std::cerr << "RunReport: cannot open '" << path << "' for writing\n";
    return false;
  }
  write(out);
  return static_cast<bool>(out);
}

}  // namespace gdsm::obs
