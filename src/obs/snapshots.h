// Json snapshots of the runtime counters the rest of the system already
// keeps: DSM protocol activity (dsm::NodeStats/DsmStats), per-message-type
// wire traffic (net::TrafficCounters), simulator time breakdowns
// (sim::Breakdown), and shared-space usage (dsm::GlobalSpace).
//
// Field names and units are part of the report schema — see docs/METRICS.md
// before renaming anything here.
#pragma once

#include "dsm/global_space.h"
#include "dsm/stats.h"
#include "net/transport.h"
#include "obs/json.h"
#include "sim/engine.h"

namespace gdsm::obs {

/// {messages, bytes, by_type: {GETPAGE: {messages, bytes}, ...}}.
/// Message types with zero traffic are omitted from by_type.
Json to_json(const net::TrafficCounters& tc);

/// Every FaultCounters counter, verbatim (faulted_messages, drops, ...).
Json to_json(const net::FaultCounters& fc);

/// Every NodeStats counter, verbatim (read_faults, write_faults, ...).
Json to_json(const dsm::NodeStats& ns);

/// {nodes: [NodeStats...], traffic: [TrafficCounters...], totals: {...},
///  home_migrations} — the per-node protocol picture of one Cluster run.
Json to_json(const dsm::DsmStats& stats);

/// {computation_s, communication_s, lock_cv_s, barrier_s, io_s, total_s} —
/// the Fig. 10 categories, in simulated seconds.
Json to_json(const sim::Breakdown& bd);

/// {pages, bytes, page_bytes, pages_per_node} of the cluster-wide shared
/// address space (home distribution reflects migration).
Json space_usage_json(const dsm::GlobalSpace& space);

/// {backend, best: {calls, cells[, seconds, cells_per_second]}, count: ...,
/// hits: ..., nw: ...} — the dispatched-kernel counters since process start
/// (simd::kernel_stats()).  Timing fields are emitted only when
/// `host_clock` is true: call counts and cell totals replay
/// deterministically, wall-clock inside the kernels does not.
Json kernel_stats_json(bool host_clock);

/// {mode, diff_batches_sent, diff_pages_batched, bulk_fetches,
/// bulk_pages_fetched, prefetch_issued, prefetch_hits, prefetch_wasted,
/// empty_diffs_suppressed, round_trips_saved} — the DSM data-plane mode the
/// process defaults to (GDSM_COMM) plus the batched-plane totals since
/// process start (dsm::comm_totals()).
Json comm_stats_json();

/// {queries, fragments_scanned, fragments_rejected, fragments_aligned,
/// filtration_rate, hits, shard_balance: {node_bases: [...],
/// node_aligned: [...]}} — the database-serving totals since process start
/// (db::db_meter_snapshot()): how many fragments the q-gram filter rejected
/// before DP and how evenly the sharded scan spread over the cluster.
Json db_stats_json();

/// {backend, peer_failures, segv_faults, pages_mapped, pages_protected,
/// twins_created, socket_bytes_sent, socket_bytes_received} — the DSM
/// execution backend the process defaults to (GDSM_BACKEND) plus the
/// process-backend totals since process start (dsm::comm_totals(); all
/// zero under the thread backend).
Json dsm_backend_json();

}  // namespace gdsm::obs
